//! 64-way bit-parallel two-valued simulation.
//!
//! The netlist is compiled once ([`Simulator::new`] lowers it into a
//! [`SimProgram`] instruction tape) and then evaluated word-by-word: each
//! gate visit computes 64 input patterns at once, and large pattern sets
//! are split column-wise across threads. This is what makes
//! 10 000-vector rare-node profiling (Fig. 3 of the paper) cheap even on
//! the larger ISCAS-89 circuits.

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError};

use crate::patterns::PatternSet;
use crate::program::SimProgram;

/// Simulated values for every node over a pattern set, bit-packed the same
/// way as [`PatternSet`]: `words(node)[p / 64] >> (p % 64) & 1`.
#[derive(Debug, Clone)]
pub struct NodeValues {
    len: usize,
    words_per_node: usize,
    words: Vec<u64>, // node-major: words[node * words_per_node + w]
}

impl NodeValues {
    /// Assembles node values from a pre-filled node-major word buffer
    /// (`words[node * words_per_node + w]`). Used by the simulation
    /// kernel; invariants (buffer length, masked tails) are the
    /// caller's responsibility.
    pub(crate) fn from_raw(len: usize, words_per_node: usize, words: Vec<u64>) -> Self {
        NodeValues {
            len,
            words_per_node,
            words,
        }
    }

    /// Number of simulated patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no patterns were simulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words of one node.
    #[must_use]
    pub fn words(&self, node: NodeId) -> &[u64] {
        let base = node.index() * self.words_per_node;
        &self.words[base..base + self.words_per_node]
    }

    /// Block-major view of one node's column: words `[w0, w0 + width)`.
    /// The node-major layout means any `[u64; W]` block of any node is
    /// already contiguous, so wide-lane consumers read blocks without a
    /// transpose on exit.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the per-node word count.
    #[must_use]
    pub fn word_block(&self, node: NodeId, w0: usize, width: usize) -> &[u64] {
        assert!(w0 + width <= self.words_per_node, "block out of range");
        let base = node.index() * self.words_per_node;
        &self.words[base + w0..base + w0 + width]
    }

    /// Consumes the values into the raw node-major word buffer. Used by
    /// the incremental re-simulation session, which edits the buffer in
    /// place instead of re-deriving every node.
    pub(crate) fn into_raw_words(self) -> Vec<u64> {
        self.words
    }

    /// Value of `node` in pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= len()`.
    #[must_use]
    pub fn value(&self, node: NodeId, pattern: usize) -> bool {
        assert!(pattern < self.len, "pattern {pattern} out of range");
        (self.words(node)[pattern / 64] >> (pattern % 64)) & 1 == 1
    }

    /// Number of patterns in which `node` is 1 (exact; tail bits are
    /// masked during simulation).
    #[must_use]
    pub fn count_ones(&self, node: NodeId) -> u64 {
        self.words(node)
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// Number of patterns in which `node` is 0.
    #[must_use]
    pub fn count_zeros(&self, node: NodeId) -> u64 {
        self.len as u64 - self.count_ones(node)
    }
}

/// A levelized bit-parallel simulator bound to one netlist.
///
/// # Examples
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::{PatternSet, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "t")?;
/// let sim = Simulator::new(&nl)?;
/// let ps = PatternSet::from_vectors(2, &[vec![true, false], vec![true, true]]);
/// let vals = sim.run_on(&nl, &ps);
/// let y = nl.find("y").unwrap();
/// assert!(vals.value(y, 0));
/// assert!(!vals.value(y, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    program: SimProgram,
}

impl Simulator {
    /// Prepares a simulator for `nl` (compiles it into a [`SimProgram`]).
    ///
    /// Sequential netlists are accepted: DFF Q outputs are treated as free
    /// inputs *if* they appear in `nl.inputs()` (i.e. after
    /// [`Netlist::scan_cut`]); otherwise DFF outputs are simulated as
    /// constant 0 (reset state), which is only appropriate for
    /// quick-and-dirty probes. Prefer scan-cut netlists.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part of `nl` is cyclic.
    pub fn new(nl: &Netlist) -> Result<Self, NetlistError> {
        Ok(Simulator {
            program: SimProgram::compile(nl)?,
        })
    }

    /// The compiled program backing this simulator.
    #[must_use]
    pub fn program(&self) -> &SimProgram {
        &self.program
    }

    /// Simulates `patterns` over the netlist this simulator was built for.
    ///
    /// Thin wrapper over [`SimProgram::run`]: the thread count and
    /// execution strategy (column-, level-parallel or hybrid) are chosen
    /// automatically from the workload shape by the kernel's planner.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the netlist's input
    /// count, or if `nl` is not the netlist the simulator was built for
    /// (detected via node-count mismatch; passing a *different* netlist of
    /// identical size is not detected and yields garbage).
    #[must_use]
    pub fn run_on(&self, nl: &Netlist, patterns: &PatternSet) -> NodeValues {
        assert_eq!(
            nl.node_count(),
            self.program.node_count(),
            "simulator built for a different netlist"
        );
        self.program.run(patterns)
    }

    /// Simulates `patterns` over exactly `threads` workers. Output is
    /// bit-identical at every thread count; see
    /// [`SimProgram::run_with_threads`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::run_on`].
    #[must_use]
    pub fn run_on_with_threads(
        &self,
        nl: &Netlist,
        patterns: &PatternSet,
        threads: usize,
    ) -> NodeValues {
        assert_eq!(
            nl.node_count(),
            self.program.node_count(),
            "simulator built for a different netlist"
        );
        self.program.run_with_threads(patterns, threads)
    }
}

/// A simulator that shares ownership of its netlist (via [`Arc`]), for
/// ergonomic repeated runs. [`BoundSimulator::new`] pays one netlist
/// clone to take ownership; [`BoundSimulator::from_arc`] pays none —
/// large-circuit campaigns that already hold an `Arc<Netlist>` get a
/// simulator without copying the graph.
///
/// # Examples
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::{PatternSet, simulator::BoundSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t")?;
/// let sim = BoundSimulator::new(&nl)?;
/// let vals = sim.run(&PatternSet::from_vectors(1, &[vec![false]]));
/// assert!(vals.value(nl.find("y").unwrap(), 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BoundSimulator {
    nl: std::sync::Arc<Netlist>,
    inner: Simulator,
}

impl BoundSimulator {
    /// Builds a simulator that owns a clone of `nl`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if `nl` is cyclic.
    pub fn new(nl: &Netlist) -> Result<Self, NetlistError> {
        Self::from_arc(std::sync::Arc::new(nl.clone()))
    }

    /// Builds a simulator sharing an already-owned netlist — no graph
    /// copy at all.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is
    /// cyclic.
    pub fn from_arc(nl: std::sync::Arc<Netlist>) -> Result<Self, NetlistError> {
        let inner = Simulator::new(&nl)?;
        Ok(BoundSimulator { nl, inner })
    }

    /// The shared netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// A shared handle to the netlist (cheap to clone).
    #[must_use]
    pub fn netlist_arc(&self) -> std::sync::Arc<Netlist> {
        std::sync::Arc::clone(&self.nl)
    }

    /// Simulates `patterns`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the input count.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet) -> NodeValues {
        self.inner.run_on(&self.nl, patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    const C17: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    fn eval_c17_reference(v: &[bool; 5]) -> (bool, bool) {
        let (i1, i2, i3, i6, i7) = (v[0], v[1], v[2], v[3], v[4]);
        let g10 = !(i1 & i3);
        let g11 = !(i3 & i6);
        let g16 = !(i2 & g11);
        let g19 = !(g11 & i7);
        let g22 = !(g10 & g16);
        let g23 = !(g16 & g19);
        (g22, g23)
    }

    #[test]
    fn c17_exhaustive_against_reference() {
        let nl = bench::parse(C17, "c17").unwrap();
        let sim = BoundSimulator::new(&nl).unwrap();
        let vectors: Vec<Vec<bool>> = (0u32..32)
            .map(|p| (0..5).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let ps = PatternSet::from_vectors(5, &vectors);
        let vals = sim.run(&ps);
        let o22 = nl.find("22").unwrap();
        let o23 = nl.find("23").unwrap();
        for (p, v) in vectors.iter().enumerate() {
            let arr = [v[0], v[1], v[2], v[3], v[4]];
            let (e22, e23) = eval_c17_reference(&arr);
            assert_eq!(vals.value(o22, p), e22, "pattern {p} out 22");
            assert_eq!(vals.value(o23, p), e23, "pattern {p} out 23");
        }
    }

    #[test]
    fn count_ones_is_exact_with_tail() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        let sim = BoundSimulator::new(&nl).unwrap();
        // 70 patterns: 35 ones in column a.
        let vectors: Vec<Vec<bool>> = (0..70).map(|p| vec![p % 2 == 0]).collect();
        let ps = PatternSet::from_vectors(1, &vectors);
        let vals = sim.run(&ps);
        let y = nl.find("y").unwrap();
        assert_eq!(vals.count_ones(y), 35);
        assert_eq!(vals.count_zeros(y), 35);
    }

    #[test]
    fn inverting_gates_tail_is_masked() {
        // NOT of constant-0 column is all ones — tail beyond len must not
        // leak into count_ones.
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let sim = BoundSimulator::new(&nl).unwrap();
        let ps = PatternSet::zeros(1, 3);
        let vals = sim.run(&ps);
        assert_eq!(vals.count_ones(nl.find("y").unwrap()), 3);
    }

    #[test]
    fn scan_cut_netlist_simulates_dff_as_input() {
        let src = "\
INPUT(a)
OUTPUT(g)
g = XOR(a, q)
q = DFF(g)
";
        let nl = bench::parse(src, "seq").unwrap().scan_cut();
        let sim = BoundSimulator::new(&nl).unwrap();
        // inputs: [a, q]
        let ps = PatternSet::from_vectors(2, &[vec![true, true], vec![true, false]]);
        let vals = sim.run(&ps);
        let g = nl.find("g").unwrap();
        assert!(!vals.value(g, 0)); // 1 ^ 1
        assert!(vals.value(g, 1)); // 1 ^ 0
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn wrong_width_panics() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        let sim = BoundSimulator::new(&nl).unwrap();
        let _ = sim.run(&PatternSet::zeros(2, 4));
    }
}
