//! Bit-packed input-pattern sets.
//!
//! A [`PatternSet`] holds `len` input vectors for a circuit with
//! `num_inputs` primary inputs, packed 64 patterns per machine word so the
//! simulator evaluates 64 vectors per gate visit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A set of input vectors, bit-packed per input.
///
/// Storage layout: `bits[input][word]`, where bit `p % 64` of
/// `bits[input][p / 64]` is the value of `input` in pattern `p`.
///
/// # Examples
///
/// ```
/// use htforge_sim::PatternSet;
///
/// let mut ps = PatternSet::zeros(3, 4);
/// ps.set(1, 2, true);
/// assert!(ps.get(1, 2));
/// assert!(!ps.get(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    num_inputs: usize,
    len: usize,
    bits: Vec<Vec<u64>>,
}

impl PatternSet {
    /// Number of 64-bit words needed for `len` patterns.
    ///
    /// Shared by every bit-parallel consumer (simulation kernel, fault
    /// simulation, validation) so the packing arithmetic lives in one
    /// place.
    #[must_use]
    pub fn words_for(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// Mask selecting the valid bits of the *final* word of a `len`-bit
    /// packed column: all-ones when `len` is a multiple of 64, otherwise
    /// the low `len % 64` bits.
    ///
    /// ANDing the last word of a column with this mask keeps whole-word
    /// population counts exact after inverting gates set the unused tail
    /// bits.
    #[must_use]
    pub fn tail_mask(len: usize) -> u64 {
        let rem = len % 64;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Creates a set of `len` all-zero vectors for `num_inputs` inputs.
    #[must_use]
    pub fn zeros(num_inputs: usize, len: usize) -> Self {
        PatternSet {
            num_inputs,
            len,
            bits: vec![vec![0u64; Self::words_for(len)]; num_inputs],
        }
    }

    /// Creates `len` uniformly random vectors from a fixed `seed`
    /// (reproducible across runs and platforms).
    #[must_use]
    pub fn random(num_inputs: usize, len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let words = Self::words_for(len);
        let mut bits = vec![vec![0u64; words]; num_inputs];
        for input_bits in &mut bits {
            for w in input_bits.iter_mut() {
                *w = rng.gen();
            }
        }
        let mut ps = PatternSet {
            num_inputs,
            len,
            bits,
        };
        ps.mask_tail();
        ps
    }

    /// Creates `len` copies of one vector: pattern `p` equals `vector`
    /// for every `p`. This is how the batched sequential stepper applies
    /// a single stimulus to all traces at once — each input column is a
    /// broadcast word (`0` or all-ones, tail-masked), built without
    /// touching individual bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use htforge_sim::PatternSet;
    ///
    /// let ps = PatternSet::broadcast(&[true, false], 70);
    /// assert!(ps.get(0, 69) && !ps.get(1, 69));
    /// ```
    #[must_use]
    pub fn broadcast(vector: &[bool], len: usize) -> Self {
        let words = Self::words_for(len);
        let mask = Self::tail_mask(len);
        let bits = vector
            .iter()
            .map(|&bit| {
                let fill = if bit { u64::MAX } else { 0 };
                let mut column = vec![fill; words];
                if let Some(last) = column.last_mut() {
                    *last &= mask;
                }
                column
            })
            .collect();
        PatternSet {
            num_inputs: vector.len(),
            len,
            bits,
        }
    }

    /// Builds a pattern set from explicit vectors; each inner slice is one
    /// pattern with one `bool` per input.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from `num_inputs`.
    #[must_use]
    pub fn from_vectors(num_inputs: usize, vectors: &[Vec<bool>]) -> Self {
        let mut ps = PatternSet::zeros(num_inputs, vectors.len());
        for (p, v) in vectors.iter().enumerate() {
            assert_eq!(v.len(), num_inputs, "pattern {p} has wrong width");
            for (i, &bit) in v.iter().enumerate() {
                if bit {
                    ps.set(i, p, true);
                }
            }
        }
        ps
    }

    /// Zeroes any bits beyond `len` in the final word, so population counts
    /// over whole words are exact.
    fn mask_tail(&mut self) {
        let mask = Self::tail_mask(self.len);
        if mask != u64::MAX {
            for input_bits in &mut self.bits {
                if let Some(last) = input_bits.last_mut() {
                    *last &= mask;
                }
            }
        }
    }

    /// Shortens the set to `new_len` patterns (no-op when already that
    /// short or shorter). Column capacity is kept, so a reused buffer —
    /// the server's chunked-simulate path truncates and refills one set
    /// per chunk — allocates only on growth. The freed tail word is
    /// re-masked so the tail invariant holds for the next `push`/
    /// `extend_from`/popcount.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        let words = Self::words_for(new_len);
        for input_bits in &mut self.bits {
            input_bits.truncate(words);
        }
        self.len = new_len;
        self.mask_tail();
    }

    /// Removes every pattern, keeping the column capacity.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Refills the set in place with `len` uniformly random vectors from
    /// `seed`, reusing column capacity. Bit-identical to
    /// [`random`](Self::random)`(num_inputs, len, seed)` — the reused
    /// buffer must never change results (differential-pinned).
    pub fn fill_random(&mut self, len: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let words = Self::words_for(len);
        self.len = len;
        for input_bits in &mut self.bits {
            input_bits.resize(words, 0);
            for w in input_bits.iter_mut() {
                *w = rng.gen();
            }
        }
        self.mask_tail();
    }

    /// Number of input columns.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no patterns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words of one input column.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[must_use]
    pub fn input_words(&self, input: usize) -> &[u64] {
        &self.bits[input]
    }

    /// Block-major view of one input column: words `[w0, w0 + width)`.
    /// The wide-lane kernel reads its `[u64; W]` input blocks through
    /// this without any transpose or copy — the packed column layout is
    /// already block-major for every block width.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range or the block exceeds the
    /// column's word count.
    #[must_use]
    pub fn input_block(&self, input: usize, w0: usize, width: usize) -> &[u64] {
        &self.bits[input][w0..w0 + width]
    }

    /// Overwrites one input column with pre-packed words (tail bits are
    /// masked). This is the feedback path of the batched sequential
    /// stepper: next-cycle DFF state columns are D-driver columns copied
    /// straight out of [`NodeValues`](crate::NodeValues), no per-bit
    /// unpacking.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range or `words.len()` differs from
    /// the column word count.
    pub fn set_input_words(&mut self, input: usize, words: &[u64]) {
        let column = &mut self.bits[input];
        assert_eq!(words.len(), column.len(), "column word count mismatch");
        column.copy_from_slice(words);
        let mask = Self::tail_mask(self.len);
        if mask != u64::MAX {
            if let Some(last) = column.last_mut() {
                *last &= mask;
            }
        }
    }

    /// Value of `input` in pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn get(&self, input: usize, pattern: usize) -> bool {
        assert!(pattern < self.len, "pattern {pattern} out of range");
        (self.bits[input][pattern / 64] >> (pattern % 64)) & 1 == 1
    }

    /// Sets the value of `input` in pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, input: usize, pattern: usize, value: bool) {
        assert!(pattern < self.len, "pattern {pattern} out of range");
        let word = &mut self.bits[input][pattern / 64];
        let mask = 1u64 << (pattern % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Extracts pattern `pattern` as a `Vec<bool>` (one entry per input).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn pattern(&self, pattern: usize) -> Vec<bool> {
        (0..self.num_inputs).map(|i| self.get(i, pattern)).collect()
    }

    /// Appends every pattern of `other` to `self`.
    ///
    /// Word-level, not bit-level: when the current length is a word
    /// multiple the columns of `other` are block-copied; otherwise each
    /// source word is shift-spliced across two destination words. Either
    /// way the cost is O(inputs × words), not O(inputs × patterns) —
    /// this is the hot path of MERO's iterative pattern-set growth.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn extend_from(&mut self, other: &PatternSet) {
        assert_eq!(self.num_inputs, other.num_inputs, "input count mismatch");
        let old_len = self.len;
        let new_len = old_len + other.len;
        let words = Self::words_for(new_len);
        let shift = old_len % 64;
        // Defensive tail masks, `FirstFireMonitor::observe` style: the
        // splice below must stay correct even if a buffer-reuse path
        // left stale bits above either set's tail (the OR would smear
        // them into the appended patterns — a latent corruption that
        // only bites at 64k ± 1 boundaries). One AND per column is
        // noise next to the copy.
        let src_tail = Self::tail_mask(other.len);
        let dst_tail = Self::tail_mask(old_len);
        for (input_bits, src) in self.bits.iter_mut().zip(&other.bits) {
            input_bits.resize(words, 0);
            if shift == 0 {
                let dst = &mut input_bits[old_len / 64..][..src.len()];
                dst.copy_from_slice(src);
                if let Some(last) = dst.last_mut() {
                    *last &= src_tail;
                }
            } else {
                // Unaligned: source word k straddles destination words
                // `old_len/64 + k` and the next one. ORing is safe once
                // both tails are clamped: the destination tail above
                // `shift` is zeroed here and every later word was just
                // resized to zero. The `>> (64 - shift)` is split in
                // two to avoid the shift-by-64 edge (shift >= 1 here).
                input_bits[old_len / 64] &= dst_tail;
                for (k, &s) in src.iter().enumerate() {
                    let s = if k + 1 == src.len() { s & src_tail } else { s };
                    let w = old_len / 64 + k;
                    input_bits[w] |= s << shift;
                    if w + 1 < words {
                        input_bits[w + 1] |= (s >> (63 - shift)) >> 1;
                    }
                }
            }
        }
        self.len = new_len;
    }

    /// The pre-word-blit [`extend_from`](Self::extend_from): one
    /// [`get`](Self::get)/[`set`](Self::set) round trip per (input,
    /// pattern). Kept as the proptest oracle and the benchmark baseline.
    #[doc(hidden)]
    pub fn extend_from_per_bit(&mut self, other: &PatternSet) {
        assert_eq!(self.num_inputs, other.num_inputs, "input count mismatch");
        let old_len = self.len;
        let new_len = old_len + other.len;
        let words = Self::words_for(new_len);
        for input_bits in &mut self.bits {
            input_bits.resize(words, 0);
        }
        self.len = new_len;
        for p in 0..other.len {
            for i in 0..self.num_inputs {
                if other.get(i, p) {
                    self.set(i, old_len + p, true);
                }
            }
        }
    }

    /// Appends a single pattern (one word append or OR per input — no
    /// per-bit index arithmetic beyond the shared shift).
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != num_inputs`.
    pub fn push(&mut self, vector: &[bool]) {
        assert_eq!(vector.len(), self.num_inputs, "pattern has wrong width");
        let p = self.len;
        let bit = 1u64 << (p % 64);
        let grow = p.is_multiple_of(64);
        // Clamp stale bits at and above position p before setting it —
        // defensive twin of the `extend_from` masks, so a corrupted tail
        // cannot make the new pattern read back wrong.
        let below = bit - 1;
        for (input_bits, &value) in self.bits.iter_mut().zip(vector) {
            if grow {
                input_bits.push(if value { bit } else { 0 });
            } else {
                let last = input_bits.last_mut().expect("non-empty column");
                *last = (*last & below) | if value { bit } else { 0 };
            }
        }
        self.len = p + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_zero() {
        let ps = PatternSet::zeros(4, 100);
        assert_eq!(ps.len(), 100);
        for p in 0..100 {
            for i in 0..4 {
                assert!(!ps.get(i, p));
            }
        }
    }

    #[test]
    fn set_get_round_trip() {
        let mut ps = PatternSet::zeros(2, 130);
        ps.set(0, 0, true);
        ps.set(1, 64, true);
        ps.set(0, 129, true);
        assert!(ps.get(0, 0));
        assert!(ps.get(1, 64));
        assert!(ps.get(0, 129));
        assert!(!ps.get(1, 129));
        ps.set(0, 0, false);
        assert!(!ps.get(0, 0));
    }

    #[test]
    fn random_is_reproducible_and_balanced() {
        let a = PatternSet::random(8, 1000, 42);
        let b = PatternSet::random(8, 1000, 42);
        assert_eq!(a, b);
        let c = PatternSet::random(8, 1000, 43);
        assert_ne!(a, c);
        // Roughly half ones per column.
        for i in 0..8 {
            let ones: u32 = a.input_words(i).iter().map(|w| w.count_ones()).sum();
            assert!((300..700).contains(&ones), "column {i}: {ones} ones");
        }
    }

    #[test]
    fn random_tail_is_masked() {
        let ps = PatternSet::random(3, 70, 7);
        let last = *ps.input_words(0).last().unwrap();
        // Patterns 64..70 occupy bits 0..6 of the last word.
        assert_eq!(last >> 6, 0);
    }

    #[test]
    fn from_vectors_and_pattern_round_trip() {
        let vecs = vec![vec![true, false, true], vec![false, false, true]];
        let ps = PatternSet::from_vectors(3, &vecs);
        assert_eq!(ps.pattern(0), vecs[0]);
        assert_eq!(ps.pattern(1), vecs[1]);
    }

    #[test]
    fn extend_and_push() {
        let mut a = PatternSet::from_vectors(2, &[vec![true, false]]);
        let b = PatternSet::from_vectors(2, &[vec![false, true], vec![true, true]]);
        a.extend_from(&b);
        a.push(&[false, false]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.pattern(0), vec![true, false]);
        assert_eq!(a.pattern(1), vec![false, true]);
        assert_eq!(a.pattern(2), vec![true, true]);
        assert_eq!(a.pattern(3), vec![false, false]);
    }

    #[test]
    fn extend_from_unaligned_splices_across_words() {
        // 70 + 130 patterns: shift = 6, source spans 3 words, result 4.
        let mut a = PatternSet::random(3, 70, 11);
        let b = PatternSet::random(3, 130, 22);
        let mut oracle = a.clone();
        a.extend_from(&b);
        oracle.extend_from_per_bit(&b);
        assert_eq!(a, oracle);
        assert_eq!(a.len(), 200);
        // Tail invariant survives the splice.
        let tail = PatternSet::tail_mask(200);
        for i in 0..3 {
            assert_eq!(a.input_words(i).last().unwrap() & !tail, 0, "input {i}");
        }
    }

    #[test]
    fn push_appends_word_at_a_time() {
        let mut ps = PatternSet::zeros(2, 0);
        for p in 0..130 {
            ps.push(&[p % 2 == 0, p % 3 == 0]);
        }
        assert_eq!(ps.len(), 130);
        assert_eq!(ps.input_words(0).len(), 3);
        for p in 0..130 {
            assert_eq!(ps.get(0, p), p % 2 == 0, "pattern {p}");
            assert_eq!(ps.get(1, p), p % 3 == 0, "pattern {p}");
        }
        assert_eq!(ps.input_words(0)[2] & !PatternSet::tail_mask(130), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn extend_from_matches_per_bit_path(
            inputs in 1usize..6,
            len_a in 0usize..200,
            len_b in 0usize..200,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let mut fast = PatternSet::random(inputs, len_a, seed);
            let b = PatternSet::random(inputs, len_b, seed ^ 0xDEAD);
            let mut slow = fast.clone();
            fast.extend_from(&b);
            slow.extend_from_per_bit(&b);
            proptest::prop_assert_eq!(&fast, &slow);
            // Round-trip spot check: the appended patterns read back.
            for p in 0..len_b {
                for i in 0..inputs {
                    proptest::prop_assert_eq!(fast.get(i, len_a + p), b.get(i, p));
                }
            }
        }
    }

    /// Plants garbage above the tail of every column — the corruption a
    /// buffer-reuse bug would leave behind. The defensive masks must
    /// make every mutator immune to it.
    fn corrupt_tail(ps: &mut PatternSet) {
        let mask = PatternSet::tail_mask(ps.len);
        for column in &mut ps.bits {
            if let Some(last) = column.last_mut() {
                *last |= !mask;
            }
        }
    }

    #[test]
    fn truncate_remasks_and_keeps_capacity() {
        for boundary in [63usize, 64, 65] {
            let full = PatternSet::random(3, 200, 5);
            let mut ps = full.clone();
            ps.truncate(boundary);
            assert_eq!(ps.len(), boundary);
            assert_eq!(ps.input_words(0).len(), PatternSet::words_for(boundary));
            let tail = PatternSet::tail_mask(boundary);
            for i in 0..3 {
                assert_eq!(
                    ps.input_words(i).last().unwrap() & !tail,
                    0,
                    "len {boundary}"
                );
                for p in 0..boundary {
                    assert_eq!(ps.get(i, p), full.get(i, p));
                }
            }
            // Popcounts stay exact — the old PR-4 chaos suite caught a
            // monitor variant of this; pin the pattern-set side too.
            let expected: u32 = (0..boundary).filter(|&p| full.get(0, p)).count() as u32;
            let ones: u32 = ps.input_words(0).iter().map(|w| w.count_ones()).sum();
            assert_eq!(ones, expected, "len {boundary}");
        }
        let mut ps = PatternSet::random(2, 10, 1);
        ps.truncate(99); // longer than len: no-op
        assert_eq!(ps.len(), 10);
        ps.clear();
        assert!(ps.is_empty());
        assert_eq!(ps.num_inputs(), 2);
    }

    #[test]
    fn fill_random_matches_fresh_random_at_word_boundaries() {
        let mut reused = PatternSet::random(5, 1000, 77);
        for (boundary, seed) in [(63usize, 1u64), (64, 2), (65, 3), (128, 4), (1000, 5)] {
            reused.truncate(0);
            reused.fill_random(boundary, seed);
            assert_eq!(
                reused,
                PatternSet::random(5, boundary, seed),
                "len {boundary}"
            );
        }
        // Growth through reuse also matches.
        reused.fill_random(2000, 9);
        assert_eq!(reused, PatternSet::random(5, 2000, 9));
    }

    #[test]
    fn push_survives_a_corrupted_tail_at_word_boundaries() {
        for boundary in [63usize, 64, 65] {
            let mut ps = PatternSet::random(2, boundary, 13);
            let clean = ps.clone();
            corrupt_tail(&mut ps);
            ps.push(&[true, false]);
            let mut oracle = clean;
            oracle.push(&[true, false]);
            assert_eq!(ps, oracle, "len {boundary}");
        }
    }

    #[test]
    fn extend_from_survives_corrupted_tails_at_word_boundaries() {
        for dst_len in [63usize, 64, 65] {
            for src_len in [63usize, 64, 65] {
                let mut dst = PatternSet::random(2, dst_len, 17);
                let mut src = PatternSet::random(2, src_len, 19);
                let mut oracle = dst.clone();
                oracle.extend_from_per_bit(&src);
                corrupt_tail(&mut dst);
                corrupt_tail(&mut src);
                dst.extend_from(&src);
                assert_eq!(dst, oracle, "{dst_len}+{src_len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let ps = PatternSet::zeros(1, 10);
        let _ = ps.get(0, 10);
    }

    #[test]
    fn broadcast_replicates_and_masks() {
        let ps = PatternSet::broadcast(&[true, false, true], 70);
        assert_eq!(ps.len(), 70);
        assert_eq!(ps.num_inputs(), 3);
        for p in [0, 63, 64, 69] {
            assert_eq!(ps.pattern(p), vec![true, false, true]);
        }
        // Tail bits beyond pattern 69 must be zero even for the `true`
        // columns, so popcounts stay exact.
        assert_eq!(ps.input_words(0)[1] >> 6, 0);
        let ones: u32 = ps.input_words(0).iter().map(|w| w.count_ones()).sum();
        assert_eq!(ones, 70);
    }

    #[test]
    fn set_input_words_overwrites_and_masks() {
        let mut ps = PatternSet::zeros(2, 66);
        ps.set_input_words(1, &[u64::MAX, u64::MAX]);
        assert!(ps.get(1, 0) && ps.get(1, 65));
        assert!(!ps.get(0, 0));
        assert_eq!(ps.input_words(1)[1], 0b11, "tail masked");
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn set_input_words_wrong_len_panics() {
        let mut ps = PatternSet::zeros(1, 64);
        ps.set_input_words(0, &[0, 0]);
    }
}
