//! Rare-node extraction — the paper's **Algorithm 1** (`Extraction_RN`).
//!
//! A node is *rare* at value `v` if, over a random vector set `V`, it
//! reaches `v` at most `θ_RN · |V|` times. Rare nodes are the candidate
//! trigger nodes for stealthy trojans: a trigger built from them fires
//! only when every one of them simultaneously sits at its rare value.
//!
//! The paper selects θ_RN = 20 % and |V| = 10 000 (§IV-A, Figs. 2–3).

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError, NodeKind};
use htforge_obs::{DegradationNote, RunBudget};

use crate::patterns::PatternSet;
use crate::simulator::Simulator;

/// A node identified as rare, together with its rare value and how often
/// it reached that value during profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RareNode {
    /// The rare node.
    pub node: NodeId,
    /// The value the node rarely takes (the trojan trigger condition).
    pub rare_value: bool,
    /// Number of profiling patterns in which the node took `rare_value`.
    pub count: u64,
}

impl RareNode {
    /// The estimated probability of the rare event, given the profiling
    /// set size.
    #[must_use]
    pub fn probability(&self, samples: usize) -> f64 {
        if samples == 0 {
            0.0
        } else {
            self.count as f64 / samples as f64
        }
    }
}

/// The result of Algorithm 1: the rare nodes of a circuit.
///
/// Matches the paper's split into `RN1` (rare at value 1) and `RN0`
/// (rare at value 0); [`RareNodeSet::iter`] chains both.
#[derive(Debug, Clone, Default)]
pub struct RareNodeSet {
    rn1: Vec<RareNode>,
    rn0: Vec<RareNode>,
    samples: usize,
}

impl RareNodeSet {
    /// Nodes rare at logic 1 (the paper's `RN1`).
    #[must_use]
    pub fn rare_at_one(&self) -> &[RareNode] {
        &self.rn1
    }

    /// Nodes rare at logic 0 (the paper's `RN0`).
    #[must_use]
    pub fn rare_at_zero(&self) -> &[RareNode] {
        &self.rn0
    }

    /// All rare nodes (RN1 then RN0).
    pub fn iter(&self) -> impl Iterator<Item = &RareNode> + '_ {
        self.rn1.iter().chain(self.rn0.iter())
    }

    /// Total number of rare nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rn1.len() + self.rn0.len()
    }

    /// Whether no rare nodes were found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rn1.is_empty() && self.rn0.is_empty()
    }

    /// Number of profiling patterns used.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Finds the rare entry for a node, if the node is rare.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<&RareNode> {
        self.iter().find(|r| r.node == node)
    }
}

impl<'a> IntoIterator for &'a RareNodeSet {
    type Item = &'a RareNode;
    type IntoIter =
        std::iter::Chain<std::slice::Iter<'a, RareNode>, std::slice::Iter<'a, RareNode>>;

    fn into_iter(self) -> Self::IntoIter {
        self.rn1.iter().chain(self.rn0.iter())
    }
}

/// Configurable rare-node extractor (Algorithm 1).
///
/// # Examples
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::{PatternSet, RareNodeExtractor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n";
/// let nl = bench::parse(src, "t")?;
/// let patterns = PatternSet::random(3, 10_000, 7);
/// // y is 1 only 1/8 of the time: rare at θ = 20 %.
/// let rare = RareNodeExtractor::new(0.20).extract(&nl, &patterns)?;
/// let y = nl.find("y").unwrap();
/// assert!(rare.rare_at_one().iter().any(|r| r.node == y));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareNodeExtractor {
    theta: f64,
    include_inputs: bool,
    include_outputs: bool,
}

impl RareNodeExtractor {
    /// Creates an extractor with rareness threshold `theta` (a fraction of
    /// the vector-set size, e.g. `0.20` for the paper's 20 %).
    ///
    /// Primary inputs are excluded by default (they are never rare under
    /// uniform random vectors and are not usable trigger nodes anyway);
    /// primary outputs are included, matching the paper's node counts.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= theta <= 1.0`.
    #[must_use]
    pub fn new(theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        RareNodeExtractor {
            theta,
            include_inputs: false,
            include_outputs: true,
        }
    }

    /// The rareness threshold.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Also consider primary inputs as rare-node candidates.
    #[must_use]
    pub fn with_inputs(mut self, include: bool) -> Self {
        self.include_inputs = include;
        self
    }

    /// Consider primary outputs as rare-node candidates (default `true`).
    #[must_use]
    pub fn with_outputs(mut self, include: bool) -> Self {
        self.include_outputs = include;
        self
    }

    /// Runs Algorithm 1: simulates `patterns` on `nl` and classifies each
    /// node. A node with `count1 ≤ θ·|V|` goes to RN1; otherwise, if
    /// `count0 ≤ θ·|V|`, to RN0 (the paper's if/else-if order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the input count.
    pub fn extract(
        &self,
        nl: &Netlist,
        patterns: &PatternSet,
    ) -> Result<RareNodeSet, NetlistError> {
        htforge_obs::faultpoint!("rare.extract_chunk");
        let sim = Simulator::new(nl)?;
        let values = sim.run_on(nl, patterns);
        let ones: Vec<u64> = nl.node_ids().map(|id| values.count_ones(id)).collect();
        Ok(self.classify(nl, &ones, patterns.len()))
    }

    /// Budget-aware Algorithm 1: like [`RareNodeExtractor::extract`],
    /// but the simulation is chunked (2048 patterns per chunk) and the
    /// budget is checked between chunks. When the budget runs out the
    /// profile is computed from the patterns simulated so far and a
    /// [`DegradationNote`] reports the truncation; counts over the
    /// simulated prefix are identical to what a full run would have
    /// seen for those patterns.
    ///
    /// With an unlimited budget this delegates to `extract` outright —
    /// same code path, zero overhead.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the input count.
    pub fn extract_budgeted(
        &self,
        nl: &Netlist,
        patterns: &PatternSet,
        budget: &RunBudget,
    ) -> Result<(RareNodeSet, Option<DegradationNote>), NetlistError> {
        if budget.is_unlimited() && !budget.cancelled() {
            return Ok((self.extract(nl, patterns)?, None));
        }
        // Chunk length must be word-aligned so columns can be copied
        // wholesale out of the source pattern set.
        const CHUNK: usize = 2048;
        let sim = Simulator::new(nl)?;
        let num_inputs = patterns.num_inputs();
        let mut ones = vec![0u64; nl.node_count()];
        let mut simulated = 0usize;
        while simulated < patterns.len() {
            if budget.check().is_err() {
                break;
            }
            htforge_obs::faultpoint!("rare.extract_chunk");
            let len = CHUNK.min(patterns.len() - simulated);
            let mut chunk = PatternSet::zeros(num_inputs, len);
            let w0 = simulated / 64;
            let w1 = w0 + PatternSet::words_for(len);
            for input in 0..num_inputs {
                chunk.set_input_words(input, &patterns.input_words(input)[w0..w1]);
            }
            let values = sim.run_on(nl, &chunk);
            for (i, id) in nl.node_ids().enumerate() {
                ones[i] += values.count_ones(id);
            }
            simulated += len;
        }
        let note = (simulated < patterns.len()).then(|| {
            DegradationNote::new(
                "rare_extraction",
                "truncated_profile",
                format!("profiled {simulated} of {} patterns", patterns.len()),
            )
        });
        Ok((self.classify(nl, &ones, simulated), note))
    }

    /// Classifies nodes into RN1/RN0 given per-node one-counts over
    /// `samples` simulated patterns (the tail of Algorithm 1).
    fn classify(&self, nl: &Netlist, ones: &[u64], samples: usize) -> RareNodeSet {
        let threshold = (self.theta * samples as f64).floor() as u64;
        let mut set = RareNodeSet {
            rn1: Vec::new(),
            rn0: Vec::new(),
            samples,
        };
        if samples == 0 {
            return set;
        }
        for (i, (id, node)) in nl.iter().enumerate() {
            match node.kind() {
                NodeKind::Input if !self.include_inputs => continue,
                NodeKind::Dff => continue, // Q of an uncut DFF is not simulated
                _ => {}
            }
            if !self.include_outputs && nl.is_output(id) {
                continue;
            }
            let ones = ones[i];
            let zeros = samples as u64 - ones;
            if ones <= threshold {
                set.rn1.push(RareNode {
                    node: id,
                    rare_value: true,
                    count: ones,
                });
            } else if zeros <= threshold {
                set.rn0.push(RareNode {
                    node: id,
                    rare_value: false,
                    count: zeros,
                });
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    const TREE: &str = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
m = AND(a, b)
n = AND(c, d)
y = AND(m, n)
";

    #[test]
    fn and_tree_internal_nodes_classified() {
        let nl = bench::parse(TREE, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 11);
        let rare = RareNodeExtractor::new(0.20).extract(&nl, &ps).unwrap();
        // P(m=1) = 1/4 > 0.2 ⇒ not rare-1; P(m=0) = 3/4 ⇒ not rare-0.
        let m = nl.find("m").unwrap();
        assert!(rare.get(m).is_none());
        // P(y=1) = 1/16 ≤ 0.2 ⇒ rare at 1.
        let y = nl.find("y").unwrap();
        let entry = rare.get(y).expect("y should be rare");
        assert!(entry.rare_value);
        assert!(entry.probability(rare.samples()) < 0.1);
    }

    #[test]
    fn larger_theta_finds_more_rare_nodes() {
        let nl = bench::parse(TREE, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 11);
        let small = RareNodeExtractor::new(0.05).extract(&nl, &ps).unwrap();
        let large = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
        assert!(large.len() >= small.len());
        // At θ = 30 %, m and n (P = 1/4) become rare at 1.
        assert!(large.get(nl.find("m").unwrap()).is_some());
    }

    #[test]
    fn nor_output_is_rare_at_one_side_or_zero_side() {
        // y = OR(a,b,c,d): P(y=0) = 1/16 ⇒ rare at 0.
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = OR(a, b, c, d)
";
        let nl = bench::parse(src, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 3);
        let rare = RareNodeExtractor::new(0.20).extract(&nl, &ps).unwrap();
        let y = nl.find("y").unwrap();
        let entry = rare.get(y).expect("y should be rare");
        assert!(!entry.rare_value);
        assert!(rare.rare_at_zero().iter().any(|r| r.node == y));
    }

    #[test]
    fn inputs_excluded_by_default_included_on_request() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        // All-zero patterns make `a` trivially "rare at 1".
        let ps = PatternSet::zeros(1, 100);
        let without = RareNodeExtractor::new(0.2).extract(&nl, &ps).unwrap();
        assert!(without.get(nl.find("a").unwrap()).is_none());
        let with = RareNodeExtractor::new(0.2)
            .with_inputs(true)
            .extract(&nl, &ps)
            .unwrap();
        assert!(with.get(nl.find("a").unwrap()).is_some());
    }

    #[test]
    fn theta_zero_marks_constant_nodes_only() {
        // y = AND(a, na) is constant 0 ⇒ count1 = 0 ≤ 0.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = AND(a, na)\n";
        let nl = bench::parse(src, "t").unwrap();
        let ps = PatternSet::random(1, 1000, 5);
        let rare = RareNodeExtractor::new(0.0).extract(&nl, &ps).unwrap();
        assert_eq!(rare.len(), 1);
        assert_eq!(rare.rare_at_one()[0].node, nl.find("y").unwrap());
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_panics() {
        let _ = RareNodeExtractor::new(1.5);
    }

    #[test]
    fn budgeted_extraction_matches_unbudgeted_when_time_allows() {
        let nl = bench::parse(TREE, "t").unwrap();
        // 5000 patterns: exercises both full chunks and a partial tail.
        let ps = PatternSet::random(4, 5_000, 11);
        let ex = RareNodeExtractor::new(0.20);
        let full = ex.extract(&nl, &ps).unwrap();
        let budget = RunBudget::with_deadline(std::time::Duration::from_secs(60));
        let (chunked, note) = ex.extract_budgeted(&nl, &ps, &budget).unwrap();
        assert!(note.is_none());
        assert_eq!(chunked.samples(), full.samples());
        assert_eq!(chunked.rare_at_one(), full.rare_at_one());
        assert_eq!(chunked.rare_at_zero(), full.rare_at_zero());
    }

    #[test]
    fn exhausted_budget_yields_truncation_note() {
        let nl = bench::parse(TREE, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 11);
        let budget = RunBudget::with_deadline(std::time::Duration::ZERO);
        let (set, note) = RareNodeExtractor::new(0.20)
            .extract_budgeted(&nl, &ps, &budget)
            .unwrap();
        assert_eq!(set.samples(), 0);
        assert!(set.is_empty());
        let note = note.expect("truncation must be reported");
        assert_eq!(note.phase, "rare_extraction");
        assert_eq!(note.action, "truncated_profile");
    }

    #[test]
    fn cancelled_unlimited_budget_takes_the_chunked_path() {
        let nl = bench::parse(TREE, "t").unwrap();
        let ps = PatternSet::random(4, 1_000, 11);
        let budget = RunBudget::unlimited();
        budget.cancel_token().cancel();
        let (set, note) = RareNodeExtractor::new(0.20)
            .extract_budgeted(&nl, &ps, &budget)
            .unwrap();
        assert!(set.is_empty());
        assert!(note.is_some());
    }
}
