//! Signal-probability estimation via random simulation.
//!
//! The probability of a node being 1 under uniform random inputs is the
//! quantity the rareness threshold θ_RN of Algorithm 1 is compared
//! against, and is also one of the structural features used by the
//! RL-baseline inserter.

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError};

use crate::patterns::PatternSet;
use crate::simulator::{NodeValues, Simulator};

/// Per-node signal probabilities estimated from simulation.
#[derive(Debug, Clone)]
pub struct SignalProbabilities {
    samples: usize,
    ones: Vec<u64>,
}

impl SignalProbabilities {
    /// Estimates probabilities by simulating `patterns` on `nl`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the input count.
    pub fn estimate(nl: &Netlist, patterns: &PatternSet) -> Result<Self, NetlistError> {
        let sim = Simulator::new(nl)?;
        let values = sim.run_on(nl, patterns);
        Ok(Self::from_values(nl, &values))
    }

    /// Derives probabilities from already-simulated values.
    #[must_use]
    pub fn from_values(nl: &Netlist, values: &NodeValues) -> Self {
        let ones = nl.node_ids().map(|id| values.count_ones(id)).collect();
        SignalProbabilities {
            samples: values.len(),
            ones,
        }
    }

    /// Number of simulated samples the estimate is based on.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Estimated probability that `node` is 1.
    #[must_use]
    pub fn p_one(&self, node: NodeId) -> f64 {
        if self.samples == 0 {
            0.5
        } else {
            self.ones[node.index()] as f64 / self.samples as f64
        }
    }

    /// Estimated probability that `node` is 0.
    #[must_use]
    pub fn p_zero(&self, node: NodeId) -> f64 {
        1.0 - self.p_one(node)
    }

    /// Raw count of patterns where `node` was 1.
    #[must_use]
    pub fn count_ones(&self, node: NodeId) -> u64 {
        self.ones[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    #[test]
    fn and_tree_probability_decays() {
        // y = AND(a,b,c,d): P(1) = 1/16 under uniform inputs.
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = AND(a, b, c, d)
";
        let nl = bench::parse(src, "t").unwrap();
        let ps = PatternSet::random(4, 20_000, 1);
        let probs = SignalProbabilities::estimate(&nl, &ps).unwrap();
        let y = nl.find("y").unwrap();
        let p = probs.p_one(y);
        assert!((p - 1.0 / 16.0).abs() < 0.01, "p = {p}");
        assert!((probs.p_zero(y) - 15.0 / 16.0).abs() < 0.01);
    }

    #[test]
    fn input_probability_is_half() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        let ps = PatternSet::random(1, 50_000, 2);
        let probs = SignalProbabilities::estimate(&nl, &ps).unwrap();
        let a = nl.find("a").unwrap();
        assert!((probs.p_one(a) - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_samples_defaults_to_half() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        let probs = SignalProbabilities::estimate(&nl, &PatternSet::zeros(1, 0)).unwrap();
        assert_eq!(probs.p_one(nl.find("a").unwrap()), 0.5);
    }
}
