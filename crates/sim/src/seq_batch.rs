//! Batched (64-traces-per-word) cycle-accurate sequential simulation.
//!
//! [`crate::sequential::SequentialSimulator`] steps **one** functional
//! trace per clock cycle through the compiled kernel, wasting 63/64 of
//! every machine word. [`BatchedSequentialSimulator`] packs 64
//! independent traces into each word instead: every cycle is one
//! bit-parallel [`SimProgram`] run over a frame whose columns are the
//! per-trace primary inputs plus the packed DFF state, and the D-driver
//! columns of the result are copied back as next-cycle state — the
//! scan-cut feedback loop closed word-at-a-time. Batches wider than 64
//! traces split across columns; single-word batches (≤64 traces) go
//! through the kernel's level-parallel mode instead of pinning one
//! core, with the planner choosing per cycle (see `DESIGN.md` §5).
//!
//! [`FirstFireMonitor`] rides along for trojan campaigns: fed one node's
//! packed values per cycle, it records the first cycle each trace saw a
//! 1 (a first-set-bit scan over fresh bits), so per-trace
//! trigger-activation and detection latencies come out of a single
//! batched pass.
//!
//! Semantics are **bit-identical** to stepping each trace through the
//! scalar simulator — proven by the differential/property harness in
//! `tests/differential_seq.rs`.

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError};

use crate::patterns::PatternSet;
use crate::program::{KernelStrategy, SimProgram};
use crate::simulator::NodeValues;

/// A sequential simulator stepping many independent traces per cycle.
///
/// # Examples
///
/// A 1-bit toggle stepped over two traces with different stimuli:
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::{seq_batch::BatchedSequentialSimulator, PatternSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "INPUT(en)\nOUTPUT(q)\nd = XOR(en, q)\nq = DFF(d)\n";
/// let nl = bench::parse(src, "toggle")?;
/// let mut sim = BatchedSequentialSimulator::new(&nl, 2)?;
/// // Trace 0 enables the toggle, trace 1 holds.
/// sim.step(&PatternSet::from_vectors(1, &[vec![true], vec![false]]));
/// assert!(sim.state_bit(0, 0));
/// assert!(!sim.state_bit(0, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchedSequentialSimulator {
    cut: Netlist,
    prog: SimProgram,
    traces: usize,
    primary_inputs: usize,
    /// D drivers of each DFF (ids valid in `cut`), in `dffs()` order.
    d_drivers: Vec<NodeId>,
    /// The standing input frame: `primary_inputs` stimulus columns
    /// followed by one packed state column per DFF (the scan-cut pseudo
    /// primary inputs, in the same order `scan_cut` appends them).
    frame: PatternSet,
    /// Explicit worker count for the kernel; `None` = automatic.
    threads: Option<usize>,
    /// Forced kernel strategy; `None` = planner's choice.
    strategy: Option<KernelStrategy>,
    last: Option<NodeValues>,
    cycles_run: u64,
    /// Cached handle for the global `seq.trace_cycles` counter (see
    /// DESIGN.md §8): one atomic add per [`step`], no name lookup.
    ///
    /// [`step`]: BatchedSequentialSimulator::step
    trace_cycles: htforge_obs::Counter,
}

impl BatchedSequentialSimulator {
    /// Builds a batched simulator for `nl` holding `traces` independent
    /// traces, all flops initialized to 0 in every trace.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part of `nl` is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `traces == 0`.
    pub fn new(nl: &Netlist, traces: usize) -> Result<Self, NetlistError> {
        assert!(traces > 0, "need at least one trace");
        let d_drivers: Vec<NodeId> = nl.dffs().iter().map(|&q| nl.node(q).fanins()[0]).collect();
        let primary_inputs = nl.inputs().len();
        let cut = nl.scan_cut();
        let prog = SimProgram::compile(&cut)?;
        let frame = PatternSet::zeros(primary_inputs + d_drivers.len(), traces);
        Ok(BatchedSequentialSimulator {
            cut,
            prog,
            traces,
            primary_inputs,
            d_drivers,
            frame,
            threads: None,
            strategy: None,
            last: None,
            cycles_run: 0,
            trace_cycles: htforge_obs::counter("seq.trace_cycles"),
        })
    }

    /// Number of traces stepped per cycle.
    #[must_use]
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// Number of primary inputs each per-cycle stimulus must provide.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.primary_inputs
    }

    /// Number of DFFs (state bits per trace).
    #[must_use]
    pub fn num_dffs(&self) -> usize {
        self.d_drivers.len()
    }

    /// Cycles stepped since construction or the last [`reset`].
    ///
    /// [`reset`]: BatchedSequentialSimulator::reset
    #[must_use]
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// The scan-cut netlist the simulator runs on (node ids are shared
    /// with the original netlist).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.cut
    }

    /// Pins the kernel worker count (`None` restores the automatic
    /// workload heuristic). Output is bit-identical at every setting;
    /// only multi-word batches (>64 traces) can actually split.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Forces a kernel execution strategy for every subsequent [`step`]
    /// (`None` restores the planner's automatic choice). Combine with
    /// [`set_threads`] to pin the worker count the forced strategy runs
    /// with. Output is bit-identical across strategies; single-word
    /// batches (≤64 traces) only gain real concurrency from
    /// [`KernelStrategy::Level`].
    ///
    /// [`step`]: BatchedSequentialSimulator::step
    /// [`set_threads`]: BatchedSequentialSimulator::set_threads
    pub fn set_strategy(&mut self, strategy: Option<KernelStrategy>) {
        self.strategy = strategy;
    }

    /// Packed state words of flop `flop` (bit `t % 64` of word `t / 64`
    /// is trace `t`).
    ///
    /// # Panics
    ///
    /// Panics if `flop` is out of range.
    #[must_use]
    pub fn state_words(&self, flop: usize) -> &[u64] {
        assert!(flop < self.num_dffs(), "flop {flop} out of range");
        self.frame.input_words(self.primary_inputs + flop)
    }

    /// State of flop `flop` in trace `trace`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn state_bit(&self, flop: usize, trace: usize) -> bool {
        assert!(flop < self.num_dffs(), "flop {flop} out of range");
        self.frame.get(self.primary_inputs + flop, trace)
    }

    /// Overwrites the state of flop `flop` in trace `trace` (e.g. to
    /// model a per-trace reset value). Invalidates [`values`].
    ///
    /// [`values`]: BatchedSequentialSimulator::values
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_state_bit(&mut self, flop: usize, trace: usize, value: bool) {
        assert!(flop < self.num_dffs(), "flop {flop} out of range");
        self.frame.set(self.primary_inputs + flop, trace, value);
        self.last = None;
    }

    /// The full flop state of one trace, in `dffs()` order.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    #[must_use]
    pub fn state_of_trace(&self, trace: usize) -> Vec<bool> {
        (0..self.num_dffs())
            .map(|k| self.frame.get(self.primary_inputs + k, trace))
            .collect()
    }

    /// Overwrites the full flop state of one trace.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range or `state.len()` differs from
    /// the DFF count.
    pub fn set_state_of_trace(&mut self, trace: usize, state: &[bool]) {
        assert_eq!(state.len(), self.num_dffs(), "state width mismatch");
        for (k, &bit) in state.iter().enumerate() {
            self.frame.set(self.primary_inputs + k, trace, bit);
        }
        self.last = None;
    }

    /// Resets every flop of every trace to 0 and the cycle counter to 0.
    pub fn reset(&mut self) {
        let words = PatternSet::words_for(self.traces);
        let zero = vec![0u64; words];
        for k in 0..self.num_dffs() {
            self.frame.set_input_words(self.primary_inputs + k, &zero);
        }
        self.last = None;
        self.cycles_run = 0;
    }

    /// Applies one clock cycle: `stimulus` column `i`, trace `t` is the
    /// value of primary input `i` in trace `t` this cycle. Combinational
    /// values settle in one bit-parallel kernel run, then every DFF of
    /// every trace captures its D input.
    ///
    /// Returns the settled values of this cycle (every node × every
    /// trace), also retrievable later via [`values`].
    ///
    /// [`values`]: BatchedSequentialSimulator::values
    ///
    /// # Panics
    ///
    /// Panics if `stimulus` has the wrong input count or trace count.
    pub fn step(&mut self, stimulus: &PatternSet) -> &NodeValues {
        assert_eq!(
            stimulus.num_inputs(),
            self.primary_inputs,
            "stimulus input count mismatch"
        );
        assert_eq!(stimulus.len(), self.traces, "stimulus trace count mismatch");
        for i in 0..self.primary_inputs {
            self.frame.set_input_words(i, stimulus.input_words(i));
        }
        let values = match (self.strategy, self.threads) {
            (Some(s), t) => {
                let threads = t.unwrap_or_else(|| self.prog.default_threads(self.traces));
                self.prog.run_with_strategy(&self.frame, s, threads)
            }
            (None, Some(t)) => self.prog.run_with_threads(&self.frame, t),
            (None, None) => self.prog.run(&self.frame),
        };
        for (k, &d) in self.d_drivers.iter().enumerate() {
            self.frame
                .set_input_words(self.primary_inputs + k, values.words(d));
        }
        self.cycles_run += 1;
        self.trace_cycles.add(self.traces as u64);
        self.last.insert(values)
    }

    /// Applies one clock cycle with the *same* input vector on every
    /// trace (broadcast). Useful when only initial states differ.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step_broadcast(&mut self, inputs: &[bool]) -> &NodeValues {
        assert_eq!(
            inputs.len(),
            self.primary_inputs,
            "stimulus input count mismatch"
        );
        let ps = PatternSet::broadcast(inputs, self.traces);
        self.step(&ps)
    }

    /// The settled values of the most recent [`step`] (`None` before the
    /// first step or after a state override).
    ///
    /// [`step`]: BatchedSequentialSimulator::step
    #[must_use]
    pub fn values(&self) -> Option<&NodeValues> {
        self.last.as_ref()
    }

    /// The settled value of `node` in `trace` after the most recent
    /// [`step`].
    ///
    /// [`step`]: BatchedSequentialSimulator::step
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    #[must_use]
    pub fn value(&self, node: NodeId, trace: usize) -> Option<bool> {
        self.last.as_ref().map(|v| v.value(node, trace))
    }

    /// The packed per-trace words of `node` after the most recent
    /// [`step`].
    ///
    /// [`step`]: BatchedSequentialSimulator::step
    #[must_use]
    pub fn node_words(&self, node: NodeId) -> Option<&[u64]> {
        self.last.as_ref().map(|v| v.words(node))
    }
}

/// Per-trace first-fire-cycle extraction over packed node values.
///
/// Feed it one packed word column per cycle (typically a trigger node's
/// [`NodeValues::words`], or an OR of golden-vs-suspect output XORs);
/// it scans only the *fresh* bits (`word & !fired`) with
/// `trailing_zeros`, so the steady-state cost per cycle is one AND and
/// one OR per 64 traces.
///
/// # Examples
///
/// ```
/// use htforge_sim::seq_batch::FirstFireMonitor;
///
/// let mut mon = FirstFireMonitor::new(3);
/// mon.observe(&[0b010]); // cycle 0: trace 1 fires
/// mon.observe(&[0b011]); // cycle 1: trace 0 fires, trace 1 stays high
/// assert_eq!(mon.first_fire(0), Some(1));
/// assert_eq!(mon.first_fire(1), Some(0));
/// assert_eq!(mon.first_fire(2), None);
/// assert_eq!(mon.earliest(), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct FirstFireMonitor {
    traces: usize,
    /// Traces that have fired so far, packed like the observed columns.
    fired: Vec<u64>,
    /// First cycle each trace fired, `u32::MAX` = never.
    first_cycle: Vec<u32>,
    cycle: u32,
}

impl FirstFireMonitor {
    const NEVER: u32 = u32::MAX;

    /// A monitor over `traces` traces, none fired, at cycle 0.
    #[must_use]
    pub fn new(traces: usize) -> Self {
        FirstFireMonitor {
            traces,
            fired: vec![0; PatternSet::words_for(traces)],
            first_cycle: vec![Self::NEVER; traces],
            cycle: 0,
        }
    }

    /// Number of traces monitored.
    #[must_use]
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// Cycles observed so far.
    #[must_use]
    pub fn cycles_observed(&self) -> u32 {
        self.cycle
    }

    /// Records one cycle's packed values of the monitored node. Bits
    /// beyond the trace count are masked off internally, so callers may
    /// feed raw words from sources without the kernel's tail-masking
    /// guarantee (e.g. hand-built columns or inverted slices) without
    /// risking phantom fires or an out-of-bounds `first_cycle` index.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the monitor's word count.
    pub fn observe(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.fired.len(), "column word count mismatch");
        let last = words.len().wrapping_sub(1);
        let tail = PatternSet::tail_mask(self.traces);
        for (w, (&word, fired)) in words.iter().zip(&mut self.fired).enumerate() {
            let word = if w == last { word & tail } else { word };
            let mut fresh = word & !*fired;
            *fired |= word;
            while fresh != 0 {
                let t = fresh.trailing_zeros();
                self.first_cycle[w * 64 + t as usize] = self.cycle;
                fresh &= fresh - 1;
            }
        }
        self.cycle += 1;
    }

    /// First cycle (0-based) in which `trace` observed a 1, if any.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    #[must_use]
    pub fn first_fire(&self, trace: usize) -> Option<u32> {
        assert!(trace < self.traces, "trace {trace} out of range");
        match self.first_cycle[trace] {
            Self::NEVER => None,
            c => Some(c),
        }
    }

    /// Per-trace first-fire cycles (`None` = never fired).
    #[must_use]
    pub fn first_fire_cycles(&self) -> Vec<Option<u32>> {
        (0..self.traces).map(|t| self.first_fire(t)).collect()
    }

    /// Number of traces that have fired.
    #[must_use]
    pub fn fired_count(&self) -> usize {
        self.fired.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any trace has fired.
    #[must_use]
    pub fn any_fired(&self) -> bool {
        self.fired.iter().any(|&w| w != 0)
    }

    /// The earliest first-fire cycle across all traces.
    #[must_use]
    pub fn earliest(&self) -> Option<u32> {
        self.first_cycle
            .iter()
            .copied()
            .filter(|&c| c != Self::NEVER)
            .min()
    }

    /// Mean first-fire latency over the traces that fired.
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        let fired: Vec<u32> = self
            .first_cycle
            .iter()
            .copied()
            .filter(|&c| c != Self::NEVER)
            .collect();
        if fired.is_empty() {
            None
        } else {
            Some(fired.iter().map(|&c| f64::from(c)).sum::<f64>() / fired.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSimulator;
    use htforge_netlist::bench;

    /// 2-bit counter that increments while `en` is high.
    const COUNTER2: &str = "\
INPUT(en)
OUTPUT(q1)
d0 = XOR(en, q0)
c0 = AND(en, q0)
d1 = XOR(c0, q1)
q0 = DFF(d0)
q1 = DFF(d1)
";

    fn counter_value(sim: &BatchedSequentialSimulator, trace: usize) -> u8 {
        u8::from(sim.state_bit(0, trace)) + 2 * u8::from(sim.state_bit(1, trace))
    }

    #[test]
    fn counters_advance_independently_per_trace() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = BatchedSequentialSimulator::new(&nl, 3).unwrap();
        // Trace 0 counts every cycle, trace 1 every other cycle, trace 2
        // never.
        for cycle in 0..5 {
            let stim =
                PatternSet::from_vectors(1, &[vec![true], vec![cycle % 2 == 0], vec![false]]);
            sim.step(&stim);
        }
        assert_eq!(counter_value(&sim, 0), 5 % 4);
        assert_eq!(counter_value(&sim, 1), 3);
        assert_eq!(counter_value(&sim, 2), 0);
        assert_eq!(sim.cycles_run(), 5);
    }

    #[test]
    fn matches_scalar_on_65_traces() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let traces = 65;
        let cycles = 9;
        let mut batched = BatchedSequentialSimulator::new(&nl, traces).unwrap();
        let mut scalars: Vec<SequentialSimulator> = (0..traces)
            .map(|_| SequentialSimulator::new(&nl).unwrap())
            .collect();
        for cycle in 0..cycles {
            let stim = PatternSet::random(1, traces, 0xAB + cycle as u64);
            batched.step(&stim);
            for (t, scalar) in scalars.iter_mut().enumerate() {
                scalar.step(&stim.pattern(t)).unwrap();
                assert_eq!(
                    batched.state_of_trace(t),
                    scalar.state(),
                    "trace {t} cycle {cycle}"
                );
            }
        }
    }

    #[test]
    fn broadcast_step_equals_uniform_stimulus() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut a = BatchedSequentialSimulator::new(&nl, 70).unwrap();
        let mut b = BatchedSequentialSimulator::new(&nl, 70).unwrap();
        a.step_broadcast(&[true]);
        b.step(&PatternSet::broadcast(&[true], 70));
        for t in 0..70 {
            assert_eq!(a.state_of_trace(t), b.state_of_trace(t));
        }
    }

    #[test]
    fn per_trace_reset_states_are_honoured() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = BatchedSequentialSimulator::new(&nl, 4).unwrap();
        for trace in 0..4 {
            let v = trace as u8;
            sim.set_state_of_trace(trace, &[v & 1 == 1, v & 2 == 2]);
        }
        assert!(sim.values().is_none(), "state override invalidates values");
        sim.step_broadcast(&[true]);
        for trace in 0..4 {
            assert_eq!(counter_value(&sim, trace), (trace as u8 + 1) % 4);
        }
        sim.reset();
        assert_eq!(sim.cycles_run(), 0);
        for trace in 0..4 {
            assert_eq!(counter_value(&sim, trace), 0);
        }
    }

    #[test]
    fn combinational_netlist_has_no_state() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let mut sim = BatchedSequentialSimulator::new(&nl, 66).unwrap();
        assert_eq!(sim.num_dffs(), 0);
        let stim = PatternSet::random(1, 66, 3);
        sim.step(&stim);
        let y = nl.find("y").unwrap();
        for t in 0..66 {
            assert_eq!(sim.value(y, t), Some(!stim.get(0, t)));
        }
    }

    #[test]
    fn explicit_thread_counts_are_bit_identical() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let traces = 200; // 4 words: actually splittable
        let mut auto = BatchedSequentialSimulator::new(&nl, traces).unwrap();
        let mut forced = BatchedSequentialSimulator::new(&nl, traces).unwrap();
        forced.set_threads(Some(3));
        for cycle in 0..7 {
            let stim = PatternSet::random(1, traces, 99 + cycle);
            auto.step(&stim);
            forced.step(&stim);
        }
        for t in 0..traces {
            assert_eq!(auto.state_of_trace(t), forced.state_of_trace(t));
        }
    }

    #[test]
    #[should_panic(expected = "trace count mismatch")]
    fn wrong_trace_count_panics() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = BatchedSequentialSimulator::new(&nl, 8).unwrap();
        sim.step(&PatternSet::zeros(1, 9));
    }

    #[test]
    fn forced_strategies_are_bit_identical_to_auto() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let traces = 130; // 3 words, last one partial
        let mut auto = BatchedSequentialSimulator::new(&nl, traces).unwrap();
        let mut forced: Vec<BatchedSequentialSimulator> = [
            KernelStrategy::Column,
            KernelStrategy::Level,
            KernelStrategy::Hybrid,
        ]
        .into_iter()
        .map(|s| {
            let mut sim = BatchedSequentialSimulator::new(&nl, traces).unwrap();
            sim.set_strategy(Some(s));
            sim.set_threads(Some(4));
            sim
        })
        .collect();
        for cycle in 0..6 {
            let stim = PatternSet::random(1, traces, 7 + cycle);
            auto.step(&stim);
            for sim in &mut forced {
                sim.step(&stim);
            }
        }
        for t in 0..traces {
            for sim in &forced {
                assert_eq!(auto.state_of_trace(t), sim.state_of_trace(t), "trace {t}");
            }
        }
    }

    #[test]
    fn monitor_masks_raw_unmasked_tail_words() {
        // 70 traces = 2 words with only 6 live bits in the last word.
        // Feed raw all-ones words (as an inverting-gate slice without
        // tail masking would produce): the monitor must neither record
        // phantom fires for traces 70..127 nor index out of bounds.
        let mut mon = FirstFireMonitor::new(70);
        mon.observe(&[u64::MAX, u64::MAX]);
        assert_eq!(mon.fired_count(), 70);
        assert_eq!(mon.first_fire(0), Some(0));
        assert_eq!(mon.first_fire(69), Some(0));
        assert_eq!(mon.first_fire_cycles().len(), 70);

        // Word-aligned trace count: the mask must be all-ones, not 0.
        let mut aligned = FirstFireMonitor::new(64);
        aligned.observe(&[u64::MAX]);
        assert_eq!(aligned.fired_count(), 64);
    }

    #[test]
    fn monitor_tracks_first_fire_across_words() {
        let mut mon = FirstFireMonitor::new(130);
        let mut col = vec![0u64; 3];
        mon.observe(&col); // cycle 0: nothing
        col[1] = 1 << 5; // trace 69
        mon.observe(&col); // cycle 1
        col[2] = 0b10; // trace 129
        mon.observe(&col); // cycle 2: 69 stays high, 129 fires
        assert_eq!(mon.first_fire(69), Some(1));
        assert_eq!(mon.first_fire(129), Some(2));
        assert_eq!(mon.first_fire(0), None);
        assert_eq!(mon.fired_count(), 2);
        assert_eq!(mon.earliest(), Some(1));
        assert_eq!(mon.cycles_observed(), 3);
        assert!((mon.mean_latency().unwrap() - 1.5).abs() < 1e-12);
    }
}
