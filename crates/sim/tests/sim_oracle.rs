//! Oracle tests: the bit-parallel simulator against a scalar reference
//! evaluator on randomly constructed netlists.

use proptest::prelude::*;

use htforge_netlist::{graph, GateKind, Netlist, NodeId, NodeKind};
use htforge_sim::simulator::BoundSimulator;
use htforge_sim::tri::{eval_gate_tri, simulate_tri};
use htforge_sim::{PatternSet, Tri};

fn build_random_netlist(num_inputs: usize, script: &[u8]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NodeId> = (0..num_inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    for (k, chunk) in script.chunks(4).enumerate() {
        if chunk.len() < 4 {
            break;
        }
        let kind = GateKind::ALL[(chunk[0] % 8) as usize];
        let mut fanins: Vec<NodeId> = chunk[1..]
            .iter()
            .map(|&b| pool[(b as usize) % pool.len()])
            .collect();
        fanins.dedup();
        if kind.is_unary() {
            fanins.truncate(1);
        }
        let id = nl
            .add_gate(format!("g{k}"), kind, fanins)
            .expect("fresh name");
        pool.push(id);
    }
    nl.mark_output(*pool.last().expect("nonempty pool"));
    nl
}

fn scalar_eval(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let order = graph::topo_order(nl).expect("acyclic");
    let mut vals = vec![false; nl.node_count()];
    for (pos, &i) in nl.inputs().iter().enumerate() {
        vals[i.index()] = inputs[pos];
    }
    for id in order {
        if let NodeKind::Gate(kind) = nl.node(id).kind() {
            let ins: Vec<bool> = nl
                .node(id)
                .fanins()
                .iter()
                .map(|f| vals[f.index()])
                .collect();
            vals[id.index()] = kind.eval_bool(&ins);
        }
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every node value from the bit-parallel simulator matches the
    /// scalar reference, for every pattern.
    #[test]
    fn bit_parallel_matches_scalar_reference(
        num_inputs in 2usize..8,
        script in proptest::collection::vec(any::<u8>(), 12..60),
        seed in any::<u64>(),
    ) {
        let nl = build_random_netlist(num_inputs, &script);
        let sim = BoundSimulator::new(&nl).expect("acyclic");
        let ps = PatternSet::random(num_inputs, 100, seed);
        let vals = sim.run(&ps);
        for p in [0usize, 50, 99] {
            let scalar = scalar_eval(&nl, &ps.pattern(p));
            for id in nl.node_ids() {
                prop_assert_eq!(
                    vals.value(id, p),
                    scalar[id.index()],
                    "node {} pattern {}", nl.node(id).name(), p
                );
            }
        }
    }

    /// Three-valued simulation with all-care inputs agrees with the
    /// two-valued simulator.
    #[test]
    fn tri_simulation_matches_boolean_on_care_inputs(
        num_inputs in 2usize..8,
        script in proptest::collection::vec(any::<u8>(), 12..60),
        pattern_bits in any::<u64>(),
    ) {
        let nl = build_random_netlist(num_inputs, &script);
        let inputs: Vec<bool> =
            (0..num_inputs).map(|i| (pattern_bits >> i) & 1 == 1).collect();
        let tris: Vec<Tri> = inputs.iter().map(|&b| Tri::from_bool(b)).collect();
        let tri_vals = simulate_tri(&nl, &tris).expect("acyclic");
        let scalar = scalar_eval(&nl, &inputs);
        for id in nl.node_ids() {
            prop_assert_eq!(
                tri_vals[id.index()],
                Tri::from_bool(scalar[id.index()]),
                "node {}", nl.node(id).name()
            );
        }
    }

    /// X-monotonicity: refining an X input to a concrete value never
    /// *changes* a node that was already definite — the property the
    /// paper's no-validation-needed cube merging rests on.
    #[test]
    fn tri_simulation_is_monotone_in_information(
        num_inputs in 2usize..8,
        script in proptest::collection::vec(any::<u8>(), 12..60),
        x_mask in any::<u64>(),
        fill in any::<u64>(),
    ) {
        let nl = build_random_netlist(num_inputs, &script);
        let coarse: Vec<Tri> = (0..num_inputs)
            .map(|i| {
                if (x_mask >> i) & 1 == 1 {
                    Tri::X
                } else {
                    Tri::from_bool((fill >> i) & 1 == 1)
                }
            })
            .collect();
        let refined: Vec<Tri> = (0..num_inputs)
            .map(|i| Tri::from_bool((fill >> i) & 1 == 1))
            .collect();
        let coarse_vals = simulate_tri(&nl, &coarse).expect("acyclic");
        let refined_vals = simulate_tri(&nl, &refined).expect("acyclic");
        for id in nl.node_ids() {
            if coarse_vals[id.index()].is_care() {
                prop_assert_eq!(
                    coarse_vals[id.index()],
                    refined_vals[id.index()],
                    "definite value flipped at {}", nl.node(id).name()
                );
            }
        }
    }

    /// Gate-level tri evaluation never invents information: an all-X
    /// input vector yields X on XOR-family gates and can only be definite
    /// through controlling values.
    #[test]
    fn tri_gate_eval_conservative(kind_idx in 0usize..8, arity in 1usize..5) {
        let kind = GateKind::ALL[kind_idx];
        let arity = if kind.is_unary() { 1 } else { arity.max(1) };
        let all_x = vec![Tri::X; arity];
        let out = eval_gate_tri(kind, &all_x);
        prop_assert_eq!(out, Tri::X, "{} of all-X must be X", kind);
    }
}
