//! Hierarchical multi-module designs and deterministic flattening.
//!
//! Industrial designs are not flat: they are a tree of module instances
//! (hundreds of modules, 100k–1M+ gates once expanded). This module
//! models that shape directly — a [`Design`] owns a shared symbol table
//! and a set of [`Module`]s; a module contains primitive cells and
//! [`Instance`]s of other modules, all referencing nets by interned
//! [`Atom`] — and provides [`Design::flatten`], which expands a chosen
//! top module into one flat [`Netlist`] for the insertion pipeline.
//!
//! Flattening is **deterministic**: instances are expanded breadth-first
//! in declaration order, flat node names are `instancepath/localname`
//! (`u1/u3/n42`), and node ids depend only on the design, so two flatten
//! calls — or two processes — produce identical netlists. Net resolution
//! is lazy and memoized per instance frame, which transparently handles
//! port aliasing chains (an output port fed straight from an input port)
//! without inserting buffer gates.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::intern::{Atom, SymbolTable};
use crate::netlist::{pack_kind, Netlist, NodeId, NodeKind};

/// Identifier of a [`Module`] within one [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub(crate) u32);

impl ModuleId {
    /// The dense index of this module.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A primitive cell inside a module: one gate or DFF driving one net.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Net driven by this cell.
    pub out: Atom,
    /// Gate or DFF ([`NodeKind::Input`] is not a cell).
    pub kind: NodeKind,
    /// Input nets, in gate-input order.
    pub fanins: Vec<Atom>,
}

/// An instantiation of another module, with positional port bindings.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name (one path segment of flat names).
    pub name: Atom,
    /// The instantiated module.
    pub module: ModuleId,
    /// Parent nets bound to the child's input ports, positionally.
    pub inputs: Vec<Atom>,
    /// Parent nets driven by the child's output ports, positionally.
    pub outputs: Vec<Atom>,
}

/// One module: ports, primitive cells, and child instances.
#[derive(Debug, Clone, Default)]
pub struct Module {
    name: String,
    inputs: Vec<Atom>,
    outputs: Vec<Atom>,
    cells: Vec<Cell>,
    instances: Vec<Instance>,
}

impl Module {
    /// The module's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input port nets, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[Atom] {
        &self.inputs
    }

    /// Output port nets, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[Atom] {
        &self.outputs
    }

    /// Primitive cells, in declaration order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Child instances, in declaration order.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }
}

/// A hierarchical design: a shared symbol table plus a forest of modules.
///
/// # Examples
///
/// ```
/// use htforge_netlist::{Design, GateKind, NodeKind};
///
/// # fn main() -> Result<(), htforge_netlist::NetlistError> {
/// let mut d = Design::new("soc");
/// let leaf = d.add_module("leaf")?;
/// let (a, b, y) = (d.intern("a"), d.intern("b"), d.intern("y"));
/// d.add_port_in(leaf, a);
/// d.add_port_in(leaf, b);
/// d.add_cell(leaf, y, NodeKind::Gate(GateKind::Nand), vec![a, b])?;
/// d.add_port_out(leaf, y);
///
/// let top = d.add_module("top")?;
/// let (x, z, w) = (d.intern("x"), d.intern("z"), d.intern("w"));
/// d.add_port_in(top, x);
/// d.add_port_in(top, z);
/// let u0 = d.intern("u0");
/// d.add_instance(top, u0, leaf, vec![x, z], vec![w])?;
/// d.add_port_out(top, w);
///
/// let flat = d.flatten(top)?;
/// assert_eq!(flat.gate_count(), 1);
/// assert!(flat.find("u0/y").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    symbols: SymbolTable,
    modules: Vec<Module>,
    by_name: HashMap<String, ModuleId>,
}

/// What drives a net inside one module (positionally resolved).
#[derive(Debug, Clone, Copy)]
enum Driver {
    /// `cells[i]` drives it.
    Cell(u32),
    /// It is input port `i` of the module.
    Port(u32),
    /// Output port `p` of `instances[i]` drives it.
    InstOut(u32, u32),
}

impl Design {
    /// Creates an empty design.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Design {
            name: name.into(),
            symbols: SymbolTable::new(),
            modules: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The design-wide symbol table (net and instance names).
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interns a net/instance name into the design's symbol table.
    pub fn intern(&mut self, name: &str) -> Atom {
        self.symbols.intern(name)
    }

    /// Number of modules.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Borrows a module.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a module of this design.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Looks a module up by name.
    #[must_use]
    pub fn find_module(&self, name: &str) -> Option<ModuleId> {
        self.by_name.get(name).copied()
    }

    /// Adds an empty module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Hierarchy`] if the name is taken.
    pub fn add_module(&mut self, name: impl Into<String>) -> Result<ModuleId, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::Hierarchy {
                module: name.clone(),
                message: "duplicate module name".into(),
            });
        }
        let id = ModuleId(self.modules.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.modules.push(Module {
            name,
            ..Module::default()
        });
        Ok(id)
    }

    /// Declares an input port net on a module.
    pub fn add_port_in(&mut self, module: ModuleId, net: Atom) {
        self.modules[module.index()].inputs.push(net);
    }

    /// Declares an output port net on a module.
    pub fn add_port_out(&mut self, module: ModuleId, net: Atom) {
        self.modules[module.index()].outputs.push(net);
    }

    /// Adds a primitive cell driving `out`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Hierarchy`] if `kind` is
    /// [`NodeKind::Input`], or [`NetlistError::BadArity`] if the fan-in
    /// count is illegal for the kind.
    pub fn add_cell(
        &mut self,
        module: ModuleId,
        out: Atom,
        kind: NodeKind,
        fanins: Vec<Atom>,
    ) -> Result<(), NetlistError> {
        let m = &mut self.modules[module.index()];
        let arity_ok = match kind {
            NodeKind::Input => {
                return Err(NetlistError::Hierarchy {
                    module: m.name.clone(),
                    message: "a cell cannot be a primary input; use add_port_in".into(),
                })
            }
            NodeKind::Dff => fanins.len() == 1,
            NodeKind::Gate(k) => k.arity_ok(fanins.len()),
        };
        if !arity_ok {
            return Err(NetlistError::BadArity {
                gate: self.symbols.resolve(out).to_owned(),
                kind: match kind {
                    NodeKind::Dff => "DFF",
                    NodeKind::Gate(k) => k.bench_keyword(),
                    NodeKind::Input => unreachable!(),
                },
                got: fanins.len(),
            });
        }
        m.cells.push(Cell { out, kind, fanins });
        Ok(())
    }

    /// Adds an instance of `child` with positional port bindings.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Hierarchy`] if the binding counts do not
    /// match the child's port counts.
    pub fn add_instance(
        &mut self,
        module: ModuleId,
        name: Atom,
        child: ModuleId,
        inputs: Vec<Atom>,
        outputs: Vec<Atom>,
    ) -> Result<(), NetlistError> {
        let child_mod = &self.modules[child.index()];
        if inputs.len() != child_mod.inputs.len() || outputs.len() != child_mod.outputs.len() {
            return Err(NetlistError::Hierarchy {
                module: self.modules[module.index()].name.clone(),
                message: format!(
                    "instance `{}` of `{}` binds {}/{} inputs and {}/{} outputs",
                    self.symbols.resolve(name),
                    child_mod.name,
                    inputs.len(),
                    child_mod.inputs.len(),
                    outputs.len(),
                    child_mod.outputs.len()
                ),
            });
        }
        self.modules[module.index()].instances.push(Instance {
            name,
            module: child,
            inputs,
            outputs,
        });
        Ok(())
    }

    /// Builds the net → driver map of one module, rejecting nets with
    /// multiple drivers.
    fn driver_map(&self, m: &Module) -> Result<HashMap<Atom, Driver>, NetlistError> {
        let mut map: HashMap<Atom, Driver> = HashMap::with_capacity(
            m.inputs.len()
                + m.cells.len()
                + m.instances.iter().map(|i| i.outputs.len()).sum::<usize>(),
        );
        let insert = |map: &mut HashMap<Atom, Driver>, net: Atom, d: Driver| {
            if map.insert(net, d).is_some() {
                return Err(NetlistError::Hierarchy {
                    module: m.name.clone(),
                    message: format!("net `{}` has multiple drivers", self.symbols.resolve(net)),
                });
            }
            Ok(())
        };
        for (i, &p) in m.inputs.iter().enumerate() {
            insert(&mut map, p, Driver::Port(i as u32))?;
        }
        for (i, c) in m.cells.iter().enumerate() {
            insert(&mut map, c.out, Driver::Cell(i as u32))?;
        }
        for (ii, inst) in m.instances.iter().enumerate() {
            for (pi, &net) in inst.outputs.iter().enumerate() {
                insert(&mut map, net, Driver::InstOut(ii as u32, pi as u32))?;
            }
        }
        Ok(map)
    }

    /// Flattens the hierarchy under `top` into one [`Netlist`].
    ///
    /// Deterministic: same design → byte-identical netlist (names, ids,
    /// edge order). Flat node names are `path/to/instance/localname`;
    /// top-level nets keep their bare names.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Hierarchy`] for multiply-driven nets,
    /// [`NetlistError::UndefinedSignal`] for undriven nets,
    /// [`NetlistError::CombinationalCycle`] for cyclic port aliasing or
    /// combinational loops, and any structural error the flat netlist's
    /// validation reports.
    pub fn flatten(&self, top: ModuleId) -> Result<Netlist, NetlistError> {
        let drivers: Vec<HashMap<Atom, Driver>> = self
            .modules
            .iter()
            .map(|m| self.driver_map(m))
            .collect::<Result<_, _>>()?;

        let mut fl = Flattener {
            design: self,
            drivers,
            nl: Netlist::new(self.modules[top.index()].name.clone()),
            frames: Vec::new(),
            memo: Vec::new(),
            pi_nodes: Vec::new(),
        };
        fl.declare(top)?;
        fl.wire(top)
    }
}

/// One expansion of a module along an instance path.
#[derive(Debug)]
struct Frame {
    module: u32,
    /// `"u1/u3/"` — prepended to local names; empty for the top frame.
    prefix: String,
    /// Parent frame and the instance index within it (None for top).
    parent: Option<(u32, u32)>,
    /// Frame index of each child instance, positionally.
    children: Vec<u32>,
    /// Flat node of each cell, positionally.
    cell_nodes: Vec<NodeId>,
}

/// Memoized per-frame net resolution state.
#[derive(Debug, Clone, Copy)]
enum Resolve {
    InProgress,
    Done(NodeId),
}

struct Flattener<'a> {
    design: &'a Design,
    drivers: Vec<HashMap<Atom, Driver>>,
    nl: Netlist,
    frames: Vec<Frame>,
    memo: Vec<HashMap<Atom, Resolve>>,
    /// Flat nodes of the top module's input ports, positionally.
    pi_nodes: Vec<NodeId>,
}

impl Flattener<'_> {
    /// Creates every flat node (primary inputs, then all cells breadth-
    /// first in instance order), leaving fan-ins unresolved.
    fn declare(&mut self, top: ModuleId) -> Result<(), NetlistError> {
        let syms = self.design.symbols();
        for &p in self.design.module(top).inputs() {
            let atom = self.nl.intern_name(syms.resolve(p));
            let id = self.nl.push_raw(atom, pack_kind(NodeKind::Input))?;
            self.pi_nodes.push(id);
        }
        self.frames.push(Frame {
            module: top.0,
            prefix: String::new(),
            parent: None,
            children: Vec::new(),
            cell_nodes: Vec::new(),
        });
        let mut fi = 0;
        while fi < self.frames.len() {
            let module = self.frames[fi].module as usize;
            let prefix = self.frames[fi].prefix.clone();
            let m = &self.design.modules[module];
            let mut flat = String::new();
            for cell in &m.cells {
                flat.clear();
                flat.push_str(&prefix);
                flat.push_str(syms.resolve(cell.out));
                let atom = self.nl.intern_name(&flat);
                let id = self.nl.push_raw(atom, pack_kind(cell.kind))?;
                self.frames[fi].cell_nodes.push(id);
            }
            for (ii, inst) in m.instances.iter().enumerate() {
                let child = self.frames.len() as u32;
                self.frames.push(Frame {
                    module: inst.module.0,
                    prefix: format!("{}{}/", prefix, syms.resolve(inst.name)),
                    parent: Some((fi as u32, ii as u32)),
                    children: Vec::new(),
                    cell_nodes: Vec::new(),
                });
                self.frames[fi].children.push(child);
            }
            fi += 1;
        }
        self.memo = (0..self.frames.len()).map(|_| HashMap::new()).collect();
        Ok(())
    }

    /// Resolves net `atom` in `frame` to its driving flat node.
    fn resolve(&mut self, frame: usize, atom: Atom) -> Result<NodeId, NetlistError> {
        match self.memo[frame].get(&atom) {
            Some(Resolve::Done(id)) => return Ok(*id),
            Some(Resolve::InProgress) => {
                return Err(NetlistError::CombinationalCycle {
                    witness: self.flat_name(frame, atom),
                })
            }
            None => {}
        }
        self.memo[frame].insert(atom, Resolve::InProgress);
        let module = self.frames[frame].module as usize;
        let id = match self.drivers[module].get(&atom).copied() {
            Some(Driver::Cell(c)) => self.frames[frame].cell_nodes[c as usize],
            Some(Driver::Port(p)) => match self.frames[frame].parent {
                None => self.pi_nodes[p as usize],
                Some((pf, pi)) => {
                    let parent_module = self.frames[pf as usize].module as usize;
                    let bound = self.design.modules[parent_module].instances[pi as usize].inputs
                        [p as usize];
                    self.resolve(pf as usize, bound)?
                }
            },
            Some(Driver::InstOut(ii, pi)) => {
                let child_frame = self.frames[frame].children[ii as usize] as usize;
                let child_module = self.frames[child_frame].module as usize;
                let inner = self.design.modules[child_module].outputs[pi as usize];
                self.resolve(child_frame, inner)?
            }
            None => return Err(NetlistError::UndefinedSignal(self.flat_name(frame, atom))),
        };
        self.memo[frame].insert(atom, Resolve::Done(id));
        Ok(id)
    }

    fn flat_name(&self, frame: usize, atom: Atom) -> String {
        format!(
            "{}{}",
            self.frames[frame].prefix,
            self.design.symbols().resolve(atom)
        )
    }

    /// Resolves every cell's fan-ins, marks top outputs, finalizes.
    fn wire(mut self, top: ModuleId) -> Result<Netlist, NetlistError> {
        let mut resolved: Vec<NodeId> = Vec::new();
        for fi in 0..self.frames.len() {
            let module = self.frames[fi].module as usize;
            for ci in 0..self.design.modules[module].cells.len() {
                resolved.clear();
                for k in 0..self.design.modules[module].cells[ci].fanins.len() {
                    let atom = self.design.modules[module].cells[ci].fanins[k];
                    resolved.push(self.resolve(fi, atom)?);
                }
                let id = self.frames[fi].cell_nodes[ci];
                self.nl.set_fanins_raw(id, &resolved);
            }
        }
        for oi in 0..self.design.module(top).outputs().len() {
            let atom = self.design.module(top).outputs()[oi];
            let id = self.resolve(0, atom)?;
            self.nl.mark_output(id);
        }
        self.nl.compact_fanouts();
        self.nl.validate()?;
        Ok(self.nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    /// leaf(a, b) -> y = NAND(a, b); mid(p, q) -> (r, s) via two leaves
    /// chained; top(x, z) -> out through a mid.
    fn three_level() -> (Design, ModuleId) {
        let mut d = Design::new("t");
        let leaf = d.add_module("leaf").unwrap();
        let (a, b, y) = (d.intern("a"), d.intern("b"), d.intern("y"));
        d.add_port_in(leaf, a);
        d.add_port_in(leaf, b);
        d.add_cell(leaf, y, NodeKind::Gate(GateKind::Nand), vec![a, b])
            .unwrap();
        d.add_port_out(leaf, y);

        let mid = d.add_module("mid").unwrap();
        let (p, q, r, s) = (d.intern("p"), d.intern("q"), d.intern("r"), d.intern("s"));
        d.add_port_in(mid, p);
        d.add_port_in(mid, q);
        let (u0, u1) = (d.intern("u0"), d.intern("u1"));
        d.add_instance(mid, u0, leaf, vec![p, q], vec![r]).unwrap();
        d.add_instance(mid, u1, leaf, vec![r, q], vec![s]).unwrap();
        d.add_port_out(mid, r);
        d.add_port_out(mid, s);

        let top = d.add_module("top").unwrap();
        let (x, z, o1, o2) = (d.intern("x"), d.intern("z"), d.intern("o1"), d.intern("o2"));
        d.add_port_in(top, x);
        d.add_port_in(top, z);
        let m0 = d.intern("m0");
        d.add_instance(top, m0, mid, vec![x, z], vec![o1, o2])
            .unwrap();
        let inv = d.intern("inv");
        d.add_cell(top, inv, NodeKind::Gate(GateKind::Not), vec![o1])
            .unwrap();
        d.add_port_out(top, inv);
        d.add_port_out(top, o2);
        (d, top)
    }

    #[test]
    fn flatten_three_levels() {
        let (d, top) = three_level();
        let nl = d.flatten(top).unwrap();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 3); // two leaf NANDs + top NOT
        assert!(nl.find("m0/u0/y").is_some());
        assert!(nl.find("m0/u1/y").is_some());
        assert!(nl.find("inv").is_some());
        // Cross-instance wiring: u1's `a` is u0's output.
        let u1y = nl.find("m0/u1/y").unwrap();
        let u0y = nl.find("m0/u0/y").unwrap();
        assert_eq!(nl.node(u1y).fanins()[0], u0y);
        // The top NOT consumes the instance output (= u0's y).
        let inv = nl.find("inv").unwrap();
        assert_eq!(nl.node(inv).fanins(), &[u0y]);
    }

    #[test]
    fn flatten_is_deterministic() {
        let (d, top) = three_level();
        let a = d.flatten(top).unwrap();
        let b = d.flatten(top).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        for (id, node) in a.iter() {
            let other = b.node(id);
            assert_eq!(node.name(), other.name());
            assert_eq!(node.kind(), other.kind());
            assert_eq!(node.fanins(), other.fanins());
            assert_eq!(node.fanouts(), other.fanouts());
        }
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn passthrough_output_port_resolves_without_buffers() {
        // wire(i) -> o where o is literally the input port.
        let mut d = Design::new("t");
        let wire = d.add_module("wire").unwrap();
        let i = d.intern("i");
        d.add_port_in(wire, i);
        d.add_port_out(wire, i);

        let top = d.add_module("top").unwrap();
        let (x, w, y) = (d.intern("x"), d.intern("w"), d.intern("y"));
        d.add_port_in(top, x);
        let u = d.intern("u");
        d.add_instance(top, u, wire, vec![x], vec![w]).unwrap();
        d.add_cell(top, y, NodeKind::Gate(GateKind::Not), vec![w])
            .unwrap();
        d.add_port_out(top, y);

        let nl = d.flatten(top).unwrap();
        assert_eq!(nl.gate_count(), 1);
        let y = nl.find("y").unwrap();
        let x = nl.find("x").unwrap();
        assert_eq!(nl.node(y).fanins(), &[x]); // aliased straight through
    }

    #[test]
    fn dff_cells_flatten() {
        let mut d = Design::new("t");
        let reg = d.add_module("reg").unwrap();
        let (din, q) = (d.intern("din"), d.intern("q"));
        d.add_port_in(reg, din);
        d.add_cell(reg, q, NodeKind::Dff, vec![din]).unwrap();
        d.add_port_out(reg, q);

        let top = d.add_module("top").unwrap();
        let (x, qq, y) = (d.intern("x"), d.intern("qq"), d.intern("y"));
        d.add_port_in(top, x);
        let r0 = d.intern("r0");
        d.add_instance(top, r0, reg, vec![x], vec![qq]).unwrap();
        d.add_cell(top, y, NodeKind::Gate(GateKind::Buf), vec![qq])
            .unwrap();
        d.add_port_out(top, y);

        let nl = d.flatten(top).unwrap();
        assert_eq!(nl.dffs().len(), 1);
        let q = nl.find("r0/q").unwrap();
        assert_eq!(nl.node(q).kind(), NodeKind::Dff);
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut d = Design::new("t");
        let m = d.add_module("m").unwrap();
        let (a, y) = (d.intern("a"), d.intern("y"));
        d.add_port_in(m, a);
        d.add_cell(m, y, NodeKind::Gate(GateKind::Buf), vec![a])
            .unwrap();
        d.add_cell(m, y, NodeKind::Gate(GateKind::Not), vec![a])
            .unwrap();
        assert!(matches!(d.flatten(m), Err(NetlistError::Hierarchy { .. })));
    }

    #[test]
    fn undriven_net_is_undefined_signal() {
        let mut d = Design::new("t");
        let m = d.add_module("m").unwrap();
        let (a, ghost, y) = (d.intern("a"), d.intern("ghost"), d.intern("y"));
        d.add_port_in(m, a);
        d.add_cell(m, y, NodeKind::Gate(GateKind::And), vec![a, ghost])
            .unwrap();
        d.add_port_out(m, y);
        assert!(matches!(
            d.flatten(m),
            Err(NetlistError::UndefinedSignal(n)) if n == "ghost"
        ));
    }

    #[test]
    fn port_binding_count_mismatch_rejected() {
        let mut d = Design::new("t");
        let leaf = d.add_module("leaf").unwrap();
        let (a, y) = (d.intern("a"), d.intern("y"));
        d.add_port_in(leaf, a);
        d.add_cell(leaf, y, NodeKind::Gate(GateKind::Not), vec![a])
            .unwrap();
        d.add_port_out(leaf, y);
        let top = d.add_module("top").unwrap();
        let u = d.intern("u");
        let err = d.add_instance(top, u, leaf, vec![], vec![]);
        assert!(matches!(err, Err(NetlistError::Hierarchy { .. })));
    }
}
