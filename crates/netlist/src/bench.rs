//! Streaming parser and writer for the ISCAS `.bench` netlist format.
//!
//! This is the format the ISCAS-85/89 benchmark circuits are distributed
//! in, e.g.:
//!
//! ```text
//! # c17
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! The parser consumes the source **line by line**: each line's tokens are
//! interned straight into the netlist's symbol table and discarded, so the
//! full source text and the built graph are never held simultaneously
//! (use [`parse_reader`] to stream from a file). Forward references —
//! common in real ISCAS files — are handled by deferring fan-in
//! resolution: every signal-producing line creates its node immediately
//! (in file order), fan-ins are recorded as atoms, and a single
//! resolution sweep wires the CSR once the file ends. DFFs are supported
//! for ISCAS-89, including Q-before-D and D-before-Q orderings; a DFF
//! whose D input is never defined is a structured
//! [`NetlistError::UndefinedSignal`], never a panic.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::BufRead;

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::intern::Atom;
use crate::netlist::{Netlist, NodeId, NodeKind, KIND_DFF, KIND_GATE_BASE, KIND_INPUT};

/// A node whose fan-ins await end-of-file resolution.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: NodeId,
    /// Range into `StreamParser::fanin_atoms`.
    off: u32,
    len: u32,
    line: u32,
}

/// Incremental `.bench` parser state; feed lines, then [`finish`].
///
/// [`finish`]: StreamParser::finish
#[derive(Debug)]
struct StreamParser {
    nl: Netlist,
    /// Flat pool of unresolved fan-in atoms, segmented by `pending`.
    fanin_atoms: Vec<Atom>,
    pending: Vec<Pending>,
    /// `OUTPUT(x)` declarations, resolved at the end.
    outputs: Vec<(Atom, u32)>,
}

impl StreamParser {
    fn new(name: &str) -> Self {
        StreamParser {
            nl: Netlist::new(name),
            fanin_atoms: Vec::new(),
            pending: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Consumes one source line. `line_no` is 1-based.
    fn feed(&mut self, line_no: usize, raw: &str) -> Result<(), NetlistError> {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            return Ok(());
        }

        if let Some(eq) = line.find('=') {
            let name = line[..eq].trim();
            if name.is_empty() {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "missing signal name before `=`".into(),
                });
            }
            let (head, inner) = split_call(line_no, &line[eq + 1..])?;
            if head.eq_ignore_ascii_case("DFF") {
                return self.feed_dff(line_no, name, inner);
            }
            let kind: GateKind = head.parse().map_err(|_| NetlistError::UnknownGateKind {
                line: line_no,
                keyword: head.to_owned(),
            })?;
            return self.feed_gate(line_no, name, kind, inner);
        }

        let (head, inner) = split_call(line_no, line)?;
        let arg = one_arg(line_no, inner)?;
        if head.eq_ignore_ascii_case("INPUT") {
            let atom = self.nl.intern_name(arg);
            self.nl.push_raw(atom, KIND_INPUT)?;
            Ok(())
        } else if head.eq_ignore_ascii_case("OUTPUT") {
            let atom = self.nl.intern_name(arg);
            self.outputs.push((atom, line_no as u32));
            Ok(())
        } else {
            Err(NetlistError::Parse {
                line: line_no,
                message: format!("unrecognized statement `{head}`"),
            })
        }
    }

    fn feed_dff(&mut self, line_no: usize, name: &str, inner: &str) -> Result<(), NetlistError> {
        let d = one_arg(line_no, inner).map_err(|_| NetlistError::Parse {
            line: line_no,
            message: format!("DFF takes 1 argument, got {}", count_args(inner)),
        })?;
        let q_atom = self.nl.intern_name(name);
        let id = self.nl.push_raw(q_atom, KIND_DFF)?;
        let d_atom = self.nl.intern_name(d);
        let off = self.fanin_atoms.len() as u32;
        self.fanin_atoms.push(d_atom);
        self.pending.push(Pending {
            id,
            off,
            len: 1,
            line: line_no as u32,
        });
        Ok(())
    }

    fn feed_gate(
        &mut self,
        line_no: usize,
        name: &str,
        kind: GateKind,
        inner: &str,
    ) -> Result<(), NetlistError> {
        let off = self.fanin_atoms.len() as u32;
        for arg in args_of(inner) {
            let atom = self.nl.intern_name(arg);
            self.fanin_atoms.push(atom);
        }
        let len = self.fanin_atoms.len() as u32 - off;
        if len == 0 {
            return Err(NetlistError::Parse {
                line: line_no,
                message: "gate with no fan-ins".into(),
            });
        }
        if !kind.arity_ok(len as usize) {
            return Err(NetlistError::BadArity {
                gate: name.to_owned(),
                kind: kind.bench_keyword(),
                got: len as usize,
            });
        }
        let atom = self.nl.intern_name(name);
        let id = self.nl.push_raw(atom, KIND_GATE_BASE + kind.code())?;
        self.pending.push(Pending {
            id,
            off,
            len,
            line: line_no as u32,
        });
        Ok(())
    }

    /// Resolves all deferred fan-ins, wires fan-outs, validates.
    fn finish(mut self) -> Result<Netlist, NetlistError> {
        let mut resolved: Vec<NodeId> = Vec::new();
        for p in &self.pending {
            resolved.clear();
            let from = p.off as usize;
            let to = from + p.len as usize;
            for &atom in &self.fanin_atoms[from..to] {
                match self.nl.find_atom(atom) {
                    Some(f) => resolved.push(f),
                    None => {
                        let name = self.nl.symbols().resolve(atom).to_owned();
                        // A DFF's dangling D driver is a semantic error on
                        // the signal; a gate's is a parse error on the line.
                        return if matches!(self.nl.kind(p.id), NodeKind::Dff) {
                            Err(NetlistError::UndefinedSignal(name))
                        } else {
                            Err(NetlistError::Parse {
                                line: p.line as usize,
                                message: format!("undefined signal `{name}`"),
                            })
                        };
                    }
                }
            }
            self.nl.set_fanins_raw(p.id, &resolved);
        }
        for &(atom, _line) in &self.outputs {
            let id = self.nl.find_atom(atom).ok_or_else(|| {
                NetlistError::UndefinedSignal(self.nl.symbols().resolve(atom).to_owned())
            })?;
            self.nl.mark_output(id);
        }
        self.nl.compact_fanouts();
        self.nl.validate()?;
        Ok(self.nl)
    }
}

/// Splits `HEAD ( inner )`, returning `(head, inner)`.
fn split_call(line_no: usize, s: &str) -> Result<(&str, &str), NetlistError> {
    let open = s.find('(').ok_or(NetlistError::Parse {
        line: line_no,
        message: "expected `(`".into(),
    })?;
    let close = s.rfind(')').ok_or(NetlistError::Parse {
        line: line_no,
        message: "expected `)`".into(),
    })?;
    if close < open {
        return Err(NetlistError::Parse {
            line: line_no,
            message: "mismatched parentheses".into(),
        });
    }
    Ok((s[..open].trim(), &s[open + 1..close]))
}

/// Iterates the non-empty comma-separated arguments of a call body.
fn args_of(inner: &str) -> impl Iterator<Item = &str> {
    inner.split(',').map(str::trim).filter(|a| !a.is_empty())
}

fn count_args(inner: &str) -> usize {
    args_of(inner).count()
}

/// Requires exactly one argument.
fn one_arg(line_no: usize, inner: &str) -> Result<&str, NetlistError> {
    let mut it = args_of(inner);
    match (it.next(), it.next()) {
        (Some(a), None) => Ok(a),
        _ => Err(NetlistError::Parse {
            line: line_no,
            message: format!("expected 1 argument, got {}", count_args(inner)),
        }),
    }
}

/// Parses a `.bench` source into a [`Netlist`] named `name`.
///
/// # Errors
///
/// Returns a [`NetlistError`] describing the first syntactic or semantic
/// problem (unknown gate kind, undefined signal, duplicate definition,
/// combinational cycle, …).
///
/// # Examples
///
/// ```
/// let src = "\
/// INPUT(a)\n\
/// INPUT(b)\n\
/// OUTPUT(y)\n\
/// y = NAND(a, b)\n";
/// let nl = htforge_netlist::bench::parse(src, "tiny")?;
/// assert_eq!(nl.node_count(), 3);
/// # Ok::<(), htforge_netlist::NetlistError>(())
/// ```
pub fn parse(source: &str, name: &str) -> Result<Netlist, NetlistError> {
    let mut p = StreamParser::new(name);
    for (i, raw) in source.lines().enumerate() {
        p.feed(i + 1, raw)?;
    }
    p.finish()
}

/// Streams a `.bench` source from a reader, line by line. At no point is
/// the full source held in memory alongside the netlist — this is the
/// entry point for industrial-scale files.
///
/// # Errors
///
/// Returns a [`NetlistError`] for syntactic/semantic problems; I/O errors
/// surface as [`NetlistError::Parse`] on the failing line.
pub fn parse_reader<R: BufRead>(reader: R, name: &str) -> Result<Netlist, NetlistError> {
    let mut p = StreamParser::new(name);
    let mut line_no = 0usize;
    for raw in reader.lines() {
        line_no += 1;
        let raw = raw.map_err(|e| NetlistError::Parse {
            line: line_no,
            message: format!("read error: {e}"),
        })?;
        p.feed(line_no, &raw)?;
    }
    p.finish()
}

/// Serializes a [`Netlist`] to `.bench` source text.
///
/// The output parses back to a structurally identical netlist (same
/// signal names, kinds and connections); see the round-trip tests.
#[must_use]
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", nl.name());
    for &i in nl.inputs() {
        // Skip pseudo-inputs that are DFFs in disguise (none after build,
        // but scan_cut outputs are legal netlists too).
        let _ = writeln!(out, "INPUT({})", nl.node(i).name());
    }
    for &o in nl.outputs() {
        let _ = writeln!(out, "OUTPUT({})", nl.node(o).name());
    }
    // Emit in topological order so the file is also human-followable.
    let order = crate::graph::topo_order(nl).expect("netlist is validated");
    let mut dff_lines: Vec<String> = Vec::new();
    for id in order {
        let node = nl.node(id);
        match node.kind() {
            NodeKind::Input => {}
            NodeKind::Dff => {
                let d = node.fanins()[0];
                dff_lines.push(format!("{} = DFF({})", node.name(), nl.node(d).name()));
            }
            NodeKind::Gate(kind) => {
                let args: Vec<&str> = node.fanins().iter().map(|&f| nl.node(f).name()).collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    node.name(),
                    kind.bench_keyword(),
                    args.join(", ")
                );
            }
        }
    }
    for line in dff_lines {
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Structural statistics of a netlist, as reported by the benchmark tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary-input count (excluding scan pseudo-inputs).
    pub inputs: usize,
    /// Primary-output count.
    pub outputs: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// DFF count.
    pub dffs: usize,
    /// Total node count.
    pub nodes: usize,
}

/// Computes [`NetlistStats`] for a netlist.
#[must_use]
pub fn stats(nl: &Netlist) -> NetlistStats {
    NetlistStats {
        inputs: nl.inputs().len(),
        outputs: nl.outputs().len(),
        gates: nl.gate_count(),
        dffs: nl.dffs().len(),
        nodes: nl.node_count(),
    }
}

/// Builds an index from signal name to [`NodeId`] (convenience for tools
/// that need many lookups).
#[must_use]
pub fn name_index(nl: &Netlist) -> HashMap<String, NodeId> {
    nl.iter().map(|(id, n)| (n.name().to_owned(), id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 — smallest ISCAS-85 circuit
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parse_c17() {
        let nl = parse(C17, "c17").unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn parse_reader_streams_identically() {
        let nl = parse(C17, "c17").unwrap();
        let nl2 = parse_reader(std::io::Cursor::new(C17.as_bytes()), "c17").unwrap();
        assert_eq!(nl.node_count(), nl2.node_count());
        for (id, node) in nl.iter() {
            let node2 = nl2.node(id);
            assert_eq!(node.name(), node2.name());
            assert_eq!(node.kind(), node2.kind());
            assert_eq!(node.fanins(), node2.fanins());
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let nl = parse(C17, "c17").unwrap();
        let text = write(&nl);
        let nl2 = parse(&text, "c17").unwrap();
        assert_eq!(nl.node_count(), nl2.node_count());
        assert_eq!(nl.inputs().len(), nl2.inputs().len());
        assert_eq!(nl.outputs().len(), nl2.outputs().len());
        for (id, node) in nl.iter() {
            let id2 = nl2.find(node.name()).unwrap();
            let node2 = nl2.node(id2);
            assert_eq!(node.kind(), node2.kind(), "kind of {}", node.name());
            let fanins: Vec<&str> = node.fanins().iter().map(|&f| nl.node(f).name()).collect();
            let fanins2: Vec<&str> = node2.fanins().iter().map(|&f| nl2.node(f).name()).collect();
            assert_eq!(fanins, fanins2, "fanins of {}", node.name());
            let _ = id;
        }
    }

    #[test]
    fn forward_references_resolve() {
        let src = "\
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = BUF(a)
";
        let nl = parse(src, "fwd").unwrap();
        assert_eq!(nl.gate_count(), 2);
    }

    #[test]
    fn dff_parses_and_round_trips() {
        let src = "\
INPUT(a)
OUTPUT(g)
g = XOR(a, q)
q = DFF(g)
";
        let nl = parse(src, "seq").unwrap();
        assert_eq!(nl.dffs().len(), 1);
        let text = write(&nl);
        let nl2 = parse(&text, "seq").unwrap();
        assert_eq!(nl2.dffs().len(), 1);
        let q = nl2.find("q").unwrap();
        assert_eq!(nl2.node(nl2.node(q).fanins()[0]).name(), "g");
    }

    #[test]
    fn dff_with_undeclared_d_is_structured_error() {
        // Regression: this shape used to reach an `expect` panic in the
        // old pass-2 resolver.
        let src = "\
INPUT(a)
OUTPUT(q)
q = DFF(ghost)
";
        assert!(matches!(
            parse(src, "bad"),
            Err(NetlistError::UndefinedSignal(n)) if n == "ghost"
        ));
    }

    #[test]
    fn dff_forward_reference_to_gate_resolves() {
        let src = "\
INPUT(a)
OUTPUT(q)
q = DFF(g)
g = NOT(a)
";
        let nl = parse(src, "seq_fwd").unwrap();
        let q = nl.find("q").unwrap();
        assert_eq!(nl.node(nl.node(q).fanins()[0]).name(), "g");
    }

    #[test]
    fn dff_wrong_arity_is_parse_error() {
        let src = "INPUT(a)\nq = DFF(a, a)\n";
        match parse(src, "bad") {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("DFF takes 1 argument"), "{message}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
# full-line comment

INPUT(a)  # trailing comment
OUTPUT(y)
y = BUF(a)
";
        let nl = parse(src, "c").unwrap();
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn unknown_gate_kind_is_reported_with_line() {
        let src = "INPUT(a)\ny = MAJ(a, a, a)\n";
        match parse(src, "bad") {
            Err(NetlistError::UnknownGateKind { line, keyword }) => {
                assert_eq!(line, 2);
                assert_eq!(keyword, "MAJ");
            }
            other => panic!("expected UnknownGateKind, got {other:?}"),
        }
    }

    #[test]
    fn undefined_signal_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        assert!(parse(src, "bad").is_err());
    }

    #[test]
    fn combinational_cycle_is_reported() {
        let src = "\
INPUT(a)
OUTPUT(p)
p = AND(a, q)
q = AND(a, p)
";
        assert!(matches!(
            parse(src, "cyc"),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn stats_match() {
        let nl = parse(C17, "c17").unwrap();
        let s = stats(&nl);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 6);
        assert_eq!(s.dffs, 0);
        assert_eq!(s.nodes, 11);
    }

    #[test]
    fn bad_syntax_reports_line() {
        let src = "INPUT(a)\nthis is not bench\n";
        match parse(src, "bad") {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }
}
