//! Parser and writer for the ISCAS `.bench` netlist format.
//!
//! This is the format the ISCAS-85/89 benchmark circuits are distributed
//! in, e.g.:
//!
//! ```text
//! # c17
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! The parser is two-pass so signals may be referenced before definition
//! (common in real ISCAS files). DFFs are supported for ISCAS-89.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};

#[derive(Debug)]
enum Stmt {
    Input(String),
    Output(String),
    Gate {
        name: String,
        kind: GateKind,
        fanins: Vec<String>,
        line: usize,
    },
    Dff {
        name: String,
        d: String,
    },
}

fn parse_line(line_no: usize, raw: &str) -> Result<Option<Stmt>, NetlistError> {
    let line = match raw.find('#') {
        Some(pos) => &raw[..pos],
        None => raw,
    }
    .trim();
    if line.is_empty() {
        return Ok(None);
    }

    let parse_call = |s: &str| -> Result<(String, Vec<String>), NetlistError> {
        let open = s.find('(').ok_or(NetlistError::Parse {
            line: line_no,
            message: "expected `(`".into(),
        })?;
        let close = s.rfind(')').ok_or(NetlistError::Parse {
            line: line_no,
            message: "expected `)`".into(),
        })?;
        if close < open {
            return Err(NetlistError::Parse {
                line: line_no,
                message: "mismatched parentheses".into(),
            });
        }
        let head = s[..open].trim().to_owned();
        let args: Vec<String> = s[open + 1..close]
            .split(',')
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();
        Ok((head, args))
    };

    if let Some(eq) = line.find('=') {
        let name = line[..eq].trim().to_owned();
        if name.is_empty() {
            return Err(NetlistError::Parse {
                line: line_no,
                message: "missing signal name before `=`".into(),
            });
        }
        let (head, args) = parse_call(&line[eq + 1..])?;
        if head.eq_ignore_ascii_case("DFF") {
            if args.len() != 1 {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: format!("DFF takes 1 argument, got {}", args.len()),
                });
            }
            return Ok(Some(Stmt::Dff {
                name,
                d: args.into_iter().next().expect("len checked"),
            }));
        }
        let kind: GateKind = head.parse().map_err(|_| NetlistError::UnknownGateKind {
            line: line_no,
            keyword: head.clone(),
        })?;
        if args.is_empty() {
            return Err(NetlistError::Parse {
                line: line_no,
                message: "gate with no fan-ins".into(),
            });
        }
        return Ok(Some(Stmt::Gate {
            name,
            kind,
            fanins: args,
            line: line_no,
        }));
    }

    let (head, args) = parse_call(line)?;
    let one_arg = |mut args: Vec<String>| -> Result<String, NetlistError> {
        if args.len() != 1 {
            return Err(NetlistError::Parse {
                line: line_no,
                message: format!("expected 1 argument, got {}", args.len()),
            });
        }
        Ok(args.remove(0))
    };
    if head.eq_ignore_ascii_case("INPUT") {
        Ok(Some(Stmt::Input(one_arg(args)?)))
    } else if head.eq_ignore_ascii_case("OUTPUT") {
        Ok(Some(Stmt::Output(one_arg(args)?)))
    } else {
        Err(NetlistError::Parse {
            line: line_no,
            message: format!("unrecognized statement `{head}`"),
        })
    }
}

/// Parses a `.bench` source into a [`Netlist`] named `name`.
///
/// # Errors
///
/// Returns a [`NetlistError`] describing the first syntactic or semantic
/// problem (unknown gate kind, undefined signal, duplicate definition,
/// combinational cycle, …).
///
/// # Examples
///
/// ```
/// let src = "\
/// INPUT(a)\n\
/// INPUT(b)\n\
/// OUTPUT(y)\n\
/// y = NAND(a, b)\n";
/// let nl = htforge_netlist::bench::parse(src, "tiny")?;
/// assert_eq!(nl.node_count(), 3);
/// # Ok::<(), htforge_netlist::NetlistError>(())
/// ```
pub fn parse(source: &str, name: &str) -> Result<Netlist, NetlistError> {
    let mut stmts = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        if let Some(stmt) = parse_line(i + 1, raw)? {
            stmts.push(stmt);
        }
    }

    let mut nl = Netlist::new(name);

    // Pass 1: declare all signal-producing nodes so forward references
    // resolve. Gates are declared in file order; their fan-ins are
    // connected in pass 2 via a rebuild.
    #[derive(Clone)]
    struct PendingGate {
        name: String,
        kind: GateKind,
        fanins: Vec<String>,
        line: usize,
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<PendingGate> = Vec::new();
    let mut dffs: Vec<(String, String)> = Vec::new();

    for stmt in stmts {
        match stmt {
            Stmt::Input(n) => inputs.push(n),
            Stmt::Output(n) => outputs.push(n),
            Stmt::Gate {
                name,
                kind,
                fanins,
                line,
            } => gates.push(PendingGate {
                name,
                kind,
                fanins,
                line,
            }),
            Stmt::Dff { name, d } => dffs.push((name, d)),
        }
    }

    for n in &inputs {
        nl.try_add_input(n.clone())?;
    }
    for (q, _) in &dffs {
        nl.add_dff_deferred(q.clone())?;
    }

    // Topologically insert gates: repeatedly add gates whose fan-ins are
    // all defined. Detects cycles/undefined signals.
    let mut remaining = gates;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut still: Vec<PendingGate> = Vec::new();
        for g in remaining {
            let resolved: Option<Vec<NodeId>> = g.fanins.iter().map(|f| nl.find(f)).collect();
            match resolved {
                Some(ids) => {
                    nl.add_gate(g.name.clone(), g.kind, ids)?;
                }
                None => still.push(g),
            }
        }
        if still.len() == before {
            // No progress: either an undefined signal or a cycle.
            let g = &still[0];
            let missing = g
                .fanins
                .iter()
                .find(|f| nl.find(f).is_none())
                .cloned()
                .unwrap_or_default();
            let defined_later = still.iter().any(|other| other.name == missing);
            if defined_later {
                return Err(NetlistError::CombinationalCycle { witness: missing });
            }
            return Err(NetlistError::Parse {
                line: g.line,
                message: format!("undefined signal `{missing}`"),
            });
        }
        remaining = still;
    }

    for (q, d) in &dffs {
        let q_id = nl.find(q).expect("dff declared in pass 1");
        let d_id = nl
            .find(d)
            .ok_or_else(|| NetlistError::UndefinedSignal(d.clone()))?;
        nl.connect_dff(q_id, d_id)?;
    }

    for n in &outputs {
        let id = nl
            .find(n)
            .ok_or_else(|| NetlistError::UndefinedSignal(n.clone()))?;
        nl.mark_output(id);
    }

    nl.validate()?;
    Ok(nl)
}

/// Serializes a [`Netlist`] to `.bench` source text.
///
/// The output parses back to a structurally identical netlist (same
/// signal names, kinds and connections); see the round-trip tests.
#[must_use]
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", nl.name());
    for &i in nl.inputs() {
        // Skip pseudo-inputs that are DFFs in disguise (none after build,
        // but scan_cut outputs are legal netlists too).
        let _ = writeln!(out, "INPUT({})", nl.node(i).name());
    }
    for &o in nl.outputs() {
        let _ = writeln!(out, "OUTPUT({})", nl.node(o).name());
    }
    // Emit in topological order so the file is also human-followable.
    let order = crate::graph::topo_order(nl).expect("netlist is validated");
    let mut dff_lines: Vec<String> = Vec::new();
    for id in order {
        let node = nl.node(id);
        match node.kind() {
            NodeKind::Input => {}
            NodeKind::Dff => {
                let d = node.fanins()[0];
                dff_lines.push(format!("{} = DFF({})", node.name(), nl.node(d).name()));
            }
            NodeKind::Gate(kind) => {
                let args: Vec<&str> = node.fanins().iter().map(|&f| nl.node(f).name()).collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    node.name(),
                    kind.bench_keyword(),
                    args.join(", ")
                );
            }
        }
    }
    for line in dff_lines {
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Structural statistics of a netlist, as reported by the benchmark tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary-input count (excluding scan pseudo-inputs).
    pub inputs: usize,
    /// Primary-output count.
    pub outputs: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// DFF count.
    pub dffs: usize,
    /// Total node count.
    pub nodes: usize,
}

/// Computes [`NetlistStats`] for a netlist.
#[must_use]
pub fn stats(nl: &Netlist) -> NetlistStats {
    NetlistStats {
        inputs: nl.inputs().len(),
        outputs: nl.outputs().len(),
        gates: nl.gate_count(),
        dffs: nl.dffs().len(),
        nodes: nl.node_count(),
    }
}

/// Builds an index from signal name to [`NodeId`] (convenience for tools
/// that need many lookups).
#[must_use]
pub fn name_index(nl: &Netlist) -> HashMap<String, NodeId> {
    nl.iter().map(|(id, n)| (n.name().to_owned(), id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 — smallest ISCAS-85 circuit
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parse_c17() {
        let nl = parse(C17, "c17").unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn round_trip_preserves_structure() {
        let nl = parse(C17, "c17").unwrap();
        let text = write(&nl);
        let nl2 = parse(&text, "c17").unwrap();
        assert_eq!(nl.node_count(), nl2.node_count());
        assert_eq!(nl.inputs().len(), nl2.inputs().len());
        assert_eq!(nl.outputs().len(), nl2.outputs().len());
        for (id, node) in nl.iter() {
            let id2 = nl2.find(node.name()).unwrap();
            let node2 = nl2.node(id2);
            assert_eq!(node.kind(), node2.kind(), "kind of {}", node.name());
            let fanins: Vec<&str> = node.fanins().iter().map(|&f| nl.node(f).name()).collect();
            let fanins2: Vec<&str> = node2.fanins().iter().map(|&f| nl2.node(f).name()).collect();
            assert_eq!(fanins, fanins2, "fanins of {}", node.name());
            let _ = id;
        }
    }

    #[test]
    fn forward_references_resolve() {
        let src = "\
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = BUF(a)
";
        let nl = parse(src, "fwd").unwrap();
        assert_eq!(nl.gate_count(), 2);
    }

    #[test]
    fn dff_parses_and_round_trips() {
        let src = "\
INPUT(a)
OUTPUT(g)
g = XOR(a, q)
q = DFF(g)
";
        let nl = parse(src, "seq").unwrap();
        assert_eq!(nl.dffs().len(), 1);
        let text = write(&nl);
        let nl2 = parse(&text, "seq").unwrap();
        assert_eq!(nl2.dffs().len(), 1);
        let q = nl2.find("q").unwrap();
        assert_eq!(nl2.node(nl2.node(q).fanins()[0]).name(), "g");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
# full-line comment

INPUT(a)  # trailing comment
OUTPUT(y)
y = BUF(a)
";
        let nl = parse(src, "c").unwrap();
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn unknown_gate_kind_is_reported_with_line() {
        let src = "INPUT(a)\ny = MAJ(a, a, a)\n";
        match parse(src, "bad") {
            Err(NetlistError::UnknownGateKind { line, keyword }) => {
                assert_eq!(line, 2);
                assert_eq!(keyword, "MAJ");
            }
            other => panic!("expected UnknownGateKind, got {other:?}"),
        }
    }

    #[test]
    fn undefined_signal_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        assert!(parse(src, "bad").is_err());
    }

    #[test]
    fn combinational_cycle_is_reported() {
        let src = "\
INPUT(a)
OUTPUT(p)
p = AND(a, q)
q = AND(a, p)
";
        assert!(matches!(
            parse(src, "cyc"),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn stats_match() {
        let nl = parse(C17, "c17").unwrap();
        let s = stats(&nl);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 6);
        assert_eq!(s.dffs, 0);
        assert_eq!(s.nodes, 11);
    }

    #[test]
    fn bad_syntax_reports_line() {
        let src = "INPUT(a)\nthis is not bench\n";
        match parse(src, "bad") {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }
}
