//! Netlist cleanup passes: dead-gate sweeping and constant folding.
//!
//! These are hygiene utilities for imported netlists (hand-written or
//! machine-generated `.bench`/Verilog can contain unreferenced logic or
//! constant subtrees). The trojan-insertion flow itself never needs
//! them — inserted logic is always live by construction — but a
//! benchmark-generation toolkit that re-emits netlists should be able to
//! normalize its inputs.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// Statistics from one cleanup pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Gates removed because nothing observable consumes them.
    pub dead_gates_removed: usize,
    /// Gates whose output was proven constant and folded away.
    pub constants_folded: usize,
}

/// Removes every gate that cannot reach a primary output or a DFF data
/// input (dead logic). Inputs are always kept, even when unused, so the
/// interface is preserved. Returns the swept netlist and statistics.
///
/// # Errors
///
/// Returns [`NetlistError`] if the input netlist is structurally invalid.
///
/// # Examples
///
/// ```
/// use htforge_netlist::{opt, Netlist, GateKind};
///
/// # fn main() -> Result<(), htforge_netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let live = nl.add_gate("live", GateKind::Not, vec![a])?;
/// let _dead = nl.add_gate("dead", GateKind::Buf, vec![a])?;
/// nl.mark_output(live);
/// let (swept, stats) = opt::sweep_dead_gates(&nl)?;
/// assert_eq!(stats.dead_gates_removed, 1);
/// assert_eq!(swept.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn sweep_dead_gates(nl: &Netlist) -> Result<(Netlist, SweepStats), NetlistError> {
    nl.validate()?;
    // Live = transitive fan-in of the primary outputs; D-input cones of
    // *live* DFFs are added by the fixed-point loop below (a DFF that
    // nothing observable consumes is dead along with its cone).
    let seeds: Vec<NodeId> = nl.outputs().to_vec();
    let live = crate::graph::transitive_fanin(nl, &seeds);

    let mut out = Netlist::new(nl.name());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut removed = 0usize;
    // DFF D-cones cross sequential boundaries: iterate liveness until
    // fixed point (a live DFF makes its D cone live).
    let mut live = live;
    loop {
        let mut extra_seeds = Vec::new();
        for &dff in nl.dffs() {
            if live[dff.index()] {
                for &d in nl.node(dff).fanins() {
                    if !live[d.index()] {
                        extra_seeds.push(d);
                    }
                }
            }
        }
        if extra_seeds.is_empty() {
            break;
        }
        let more = crate::graph::transitive_fanin(nl, &extra_seeds);
        for (l, m) in live.iter_mut().zip(more) {
            *l |= m;
        }
    }

    for &i in nl.inputs() {
        map.insert(i, out.try_add_input(nl.node(i).name().to_owned())?);
    }
    for &dff in nl.dffs() {
        if live[dff.index()] {
            map.insert(dff, out.add_dff_deferred(nl.node(dff).name().to_owned())?);
        }
    }
    for id in crate::graph::topo_order(nl)? {
        let node = nl.node(id);
        match node.kind() {
            NodeKind::Gate(kind) => {
                if !live[id.index()] {
                    removed += 1;
                    continue;
                }
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f]).collect();
                map.insert(id, out.add_gate(node.name().to_owned(), kind, fanins)?);
            }
            NodeKind::Input | NodeKind::Dff => {}
        }
    }
    for &dff in nl.dffs() {
        if live[dff.index()] {
            let d = nl.node(dff).fanins()[0];
            out.connect_dff(map[&dff], map[&d])?;
        }
    }
    for &o in nl.outputs() {
        out.mark_output(map[&o]);
    }
    out.validate()?;
    Ok((
        out,
        SweepStats {
            dead_gates_removed: removed,
            constants_folded: 0,
        },
    ))
}

/// Value lattice for constant propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Const {
    Zero,
    One,
    Unknown,
}

/// Folds gates whose output is provably constant (e.g. `AND(x, NOT x)`),
/// replacing them with a canonical constant cell (`AND(i, NOT i)` /
/// `OR(i, NOT i)` over the first input) shared by all folded gates.
/// Follow with [`sweep_dead_gates`] to drop the disconnected cones.
///
/// Only *structural* constants are folded: a gate is constant when its
/// evaluation over the constant lattice is definite, or when two of its
/// fan-ins are complementary through a direct inverter.
///
/// # Errors
///
/// Returns [`NetlistError`] for invalid netlists, or if the netlist has
/// no primary input to anchor the constant cells on.
pub fn fold_constants(nl: &Netlist) -> Result<(Netlist, SweepStats), NetlistError> {
    nl.validate()?;
    let order = crate::graph::topo_order(nl)?;
    let mut value = vec![Const::Unknown; nl.node_count()];

    // inverter_of[x] = y when y = NOT(x).
    let mut inverter_of: HashMap<NodeId, NodeId> = HashMap::new();
    for (id, node) in nl.iter() {
        if node.kind() == NodeKind::Gate(GateKind::Not) {
            inverter_of.insert(node.fanins()[0], id);
        }
    }

    let mut folded = 0usize;
    for &id in &order {
        let node = nl.node(id);
        let kind = match node.kind() {
            NodeKind::Gate(k) => k,
            _ => continue,
        };
        let fanins = node.fanins();
        // Complementary-pair rule for AND/NAND/OR/NOR.
        let complementary = fanins
            .iter()
            .any(|&a| fanins.iter().any(|&b| inverter_of.get(&a) == Some(&b)));
        let vals: Vec<Const> = fanins.iter().map(|f| value[f.index()]).collect();
        let out = match kind {
            GateKind::And | GateKind::Nand => {
                let any_zero = complementary || vals.contains(&Const::Zero);
                let all_one = vals.iter().all(|&v| v == Const::One);
                if any_zero {
                    Some(kind == GateKind::Nand)
                } else if all_one {
                    Some(kind == GateKind::And)
                } else {
                    None
                }
            }
            GateKind::Or | GateKind::Nor => {
                let any_one = complementary || vals.contains(&Const::One);
                let all_zero = vals.iter().all(|&v| v == Const::Zero);
                if any_one {
                    Some(kind == GateKind::Or)
                } else if all_zero {
                    Some(kind == GateKind::Nor)
                } else {
                    None
                }
            }
            GateKind::Not => match vals[0] {
                Const::Zero => Some(true),
                Const::One => Some(false),
                Const::Unknown => None,
            },
            GateKind::Buf => match vals[0] {
                Const::Zero => Some(false),
                Const::One => Some(true),
                Const::Unknown => None,
            },
            GateKind::Xor | GateKind::Xnor => {
                if vals.iter().all(|&v| v != Const::Unknown) {
                    let parity = vals.iter().filter(|&&v| v == Const::One).count() % 2;
                    Some((parity == 1) ^ (kind == GateKind::Xnor))
                } else {
                    None
                }
            }
        };
        if let Some(b) = out {
            value[id.index()] = if b { Const::One } else { Const::Zero };
        }
    }

    // Rebuild, routing constant gates through shared constant cells.
    let anchor = *nl
        .inputs()
        .first()
        .ok_or_else(|| NetlistError::UndefinedSignal("<no inputs>".into()))?;
    let mut out = Netlist::new(nl.name());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for &i in nl.inputs() {
        map.insert(i, out.try_add_input(nl.node(i).name().to_owned())?);
    }
    for &dff in nl.dffs() {
        map.insert(dff, out.add_dff_deferred(nl.node(dff).name().to_owned())?);
    }
    let mut const_cells: [Option<NodeId>; 2] = [None, None];
    let cell = |out: &mut Netlist,
                map: &HashMap<NodeId, NodeId>,
                cells: &mut [Option<NodeId>; 2],
                which: bool|
     -> Result<NodeId, NetlistError> {
        let idx = usize::from(which);
        if let Some(c) = cells[idx] {
            return Ok(c);
        }
        let a = map[&anchor];
        let na = match out.find("_const_inv") {
            Some(n) => n,
            None => out.add_gate("_const_inv", GateKind::Not, vec![a])?,
        };
        let c = if which {
            out.add_gate("_const_one", GateKind::Or, vec![a, na])?
        } else {
            out.add_gate("_const_zero", GateKind::And, vec![a, na])?
        };
        cells[idx] = Some(c);
        Ok(c)
    };
    for &id in &order {
        let node = nl.node(id);
        let kind = match node.kind() {
            NodeKind::Gate(k) => k,
            _ => continue,
        };
        let new_id = match value[id.index()] {
            Const::Zero => {
                folded += 1;
                let c = cell(&mut out, &map, &mut const_cells, false)?;
                out.add_gate(node.name().to_owned(), GateKind::Buf, vec![c])?
            }
            Const::One => {
                folded += 1;
                let c = cell(&mut out, &map, &mut const_cells, true)?;
                out.add_gate(node.name().to_owned(), GateKind::Buf, vec![c])?
            }
            Const::Unknown => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f]).collect();
                out.add_gate(node.name().to_owned(), kind, fanins)?
            }
        };
        map.insert(id, new_id);
    }
    for &dff in nl.dffs() {
        let d = nl.node(dff).fanins()[0];
        out.connect_dff(map[&dff], map[&d])?;
    }
    for &o in nl.outputs() {
        out.mark_output(map[&o]);
    }
    out.validate()?;
    Ok((
        out,
        SweepStats {
            dead_gates_removed: 0,
            constants_folded: folded,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn sweep_keeps_live_cone_only() {
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
d1 = NOT(a)
d2 = OR(d1, b)
";
        let nl = bench::parse(src, "t").unwrap();
        let (swept, stats) = sweep_dead_gates(&nl).unwrap();
        assert_eq!(stats.dead_gates_removed, 2);
        assert_eq!(swept.gate_count(), 1);
        assert_eq!(swept.inputs().len(), 2);
        assert!(swept.find("y").is_some());
        assert!(swept.find("d2").is_none());
    }

    #[test]
    fn sweep_keeps_dff_feedback() {
        let src = "\
INPUT(a)
OUTPUT(o)
g = XOR(a, q)
q = DFF(g)
o = BUF(q)
";
        let nl = bench::parse(src, "t").unwrap();
        let (swept, stats) = sweep_dead_gates(&nl).unwrap();
        assert_eq!(stats.dead_gates_removed, 0);
        assert_eq!(swept.dffs().len(), 1);
        assert_eq!(swept.gate_count(), 2);
    }

    #[test]
    fn sweep_drops_dead_dff_cone() {
        let src = "\
INPUT(a)
OUTPUT(y)
y = NOT(a)
g = BUF(a)
q = DFF(g)
";
        let nl = bench::parse(src, "t").unwrap();
        let (swept, _) = sweep_dead_gates(&nl).unwrap();
        assert_eq!(swept.dffs().len(), 0);
        assert!(swept.find("g").is_none());
        assert_eq!(swept.gate_count(), 1);
    }

    #[test]
    fn fold_complementary_and() {
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
na = NOT(a)
c = AND(a, na)
y = OR(c, b)
";
        let nl = bench::parse(src, "t").unwrap();
        let (folded, stats) = fold_constants(&nl).unwrap();
        assert_eq!(stats.constants_folded, 1);
        // c is now a BUF of the shared constant-zero cell.
        let c = folded.find("c").unwrap();
        assert_eq!(folded.node(c).kind(), crate::NodeKind::Gate(GateKind::Buf));
        assert!(folded.find("_const_zero").is_some());
        assert!(folded.validate().is_ok());
    }

    #[test]
    fn fold_propagates_through_chains() {
        // zero = AND(a, na); one = NOT(zero); y = AND(one, b) → y ≡ b
        // (y itself is not constant, but `one` is folded).
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
na = NOT(a)
zero = AND(a, na)
one = NOT(zero)
y = AND(one, b)
";
        let nl = bench::parse(src, "t").unwrap();
        let (folded, stats) = fold_constants(&nl).unwrap();
        assert_eq!(stats.constants_folded, 2); // zero and one
        assert!(folded.validate().is_ok());
        // Functional check over both inputs.
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let eval = |nl: &Netlist| {
                let order = crate::graph::topo_order(nl).unwrap();
                let mut vals = vec![false; nl.node_count()];
                for (pos, &i) in nl.inputs().iter().enumerate() {
                    vals[i.index()] = [a, b][pos];
                }
                for id in order {
                    if let crate::NodeKind::Gate(kind) = nl.node(id).kind() {
                        let ins: Vec<bool> = nl
                            .node(id)
                            .fanins()
                            .iter()
                            .map(|f| vals[f.index()])
                            .collect();
                        vals[id.index()] = kind.eval_bool(&ins);
                    }
                }
                vals[nl.outputs()[0].index()]
            };
            assert_eq!(eval(&nl), eval(&folded), "a={a} b={b}");
        }
    }

    #[test]
    fn fold_then_sweep_shrinks() {
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
na = NOT(a)
zero = AND(a, na)
one = NOT(zero)
y = AND(one, b)
";
        let nl = bench::parse(src, "t").unwrap();
        let (folded, _) = fold_constants(&nl).unwrap();
        let (swept, _) = sweep_dead_gates(&folded).unwrap();
        assert!(swept.gate_count() < nl.gate_count() + 3);
        assert!(swept.validate().is_ok());
    }

    #[test]
    fn no_constants_is_identity_shaped() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
        let nl = bench::parse(src, "t").unwrap();
        let (folded, stats) = fold_constants(&nl).unwrap();
        assert_eq!(stats.constants_folded, 0);
        assert_eq!(folded.gate_count(), nl.gate_count());
    }
}
