//! Graph analyses over a [`Netlist`]: topological order, levelization,
//! fan-in/fan-out cones and reachability.
//!
//! All functions treat the netlist as the DAG described in §III-A of the
//! paper: vertices are gates/inputs, edges are gate connections. DFF nodes
//! (if any) act as sources — their Q-side is treated like an input and the
//! Q←D edge is ignored, which matches the full-scan model produced by
//! [`Netlist::scan_cut`].

use crate::error::NetlistError;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// Returns a topological order of the combinational part of `nl`
/// (fan-ins always precede fan-outs). DFF nodes appear as sources.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational part
/// contains a cycle.
pub fn topo_order(nl: &Netlist) -> Result<Vec<NodeId>, NetlistError> {
    let n = nl.node_count();
    let mut indeg = vec![0u32; n];
    for (id, node) in nl.iter() {
        if node.kind() == NodeKind::Dff {
            continue; // Q←D edge is sequential, not combinational.
        }
        indeg[id.index()] = node.fanins().len() as u32;
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<NodeId> = nl.node_ids().filter(|id| indeg[id.index()] == 0).collect();
    while let Some(id) = queue.pop() {
        order.push(id);
        for &f in nl.node(id).fanouts() {
            if nl.node(f).kind() == NodeKind::Dff {
                continue;
            }
            indeg[f.index()] -= 1;
            if indeg[f.index()] == 0 {
                queue.push(f);
            }
        }
    }
    if order.len() != n {
        let witness = nl
            .node_ids()
            .find(|id| indeg[id.index()] > 0)
            .map(|id| nl.node(id).name().to_owned())
            .unwrap_or_default();
        return Err(NetlistError::CombinationalCycle { witness });
    }
    Ok(order)
}

/// Computes the logic level of each node: 0 for inputs and DFFs,
/// `1 + max(level of fan-ins)` for gates. Returned vector is indexed by
/// [`NodeId::index`].
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic.
pub fn levelize(nl: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = topo_order(nl)?;
    let mut level = vec![0u32; nl.node_count()];
    for id in order {
        let node = nl.node(id);
        if matches!(node.kind(), NodeKind::Gate(_)) {
            level[id.index()] = node
                .fanins()
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
        }
    }
    Ok(level)
}

/// The maximum logic level (circuit depth).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic.
pub fn depth(nl: &Netlist) -> Result<u32, NetlistError> {
    Ok(levelize(nl)?.into_iter().max().unwrap_or(0))
}

/// Returns a bitmask (indexed by node) of the transitive fan-out of
/// `seeds`, *including* the seeds themselves. DFF boundaries are not
/// crossed (a DFF's Q is not reached from its D).
#[must_use]
pub fn transitive_fanout(nl: &Netlist, seeds: &[NodeId]) -> Vec<bool> {
    let mut seen = vec![false; nl.node_count()];
    let mut stack: Vec<NodeId> = seeds.to_vec();
    for s in seeds {
        seen[s.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in nl.node(id).fanouts() {
            if nl.node(f).kind() == NodeKind::Dff {
                continue;
            }
            if !seen[f.index()] {
                seen[f.index()] = true;
                stack.push(f);
            }
        }
    }
    seen
}

/// Returns a bitmask (indexed by node) of the transitive fan-in of
/// `seeds`, *including* the seeds themselves. DFF boundaries are not
/// crossed.
#[must_use]
pub fn transitive_fanin(nl: &Netlist, seeds: &[NodeId]) -> Vec<bool> {
    let mut seen = vec![false; nl.node_count()];
    let mut stack: Vec<NodeId> = Vec::new();
    for s in seeds {
        if !seen[s.index()] {
            seen[s.index()] = true;
            stack.push(*s);
        }
    }
    while let Some(id) = stack.pop() {
        if nl.node(id).kind() == NodeKind::Dff {
            continue;
        }
        for &f in nl.node(id).fanins() {
            if !seen[f.index()] {
                seen[f.index()] = true;
                stack.push(f);
            }
        }
    }
    seen
}

/// Returns `true` if `target` is combinationally reachable from `from`
/// (following fan-out edges, not crossing DFFs).
#[must_use]
pub fn reaches(nl: &Netlist, from: NodeId, target: NodeId) -> bool {
    transitive_fanout(nl, &[from])[target.index()]
}

/// Gate-type histogram: number of gates of each [`crate::GateKind`]
/// (indexed by position in [`GateKind::ALL`]).
///
/// [`GateKind::ALL`]: crate::GateKind::ALL
#[must_use]
pub fn gate_histogram(nl: &Netlist) -> [usize; 8] {
    let mut hist = [0usize; 8];
    for (_, node) in nl.iter() {
        if let NodeKind::Gate(k) = node.kind() {
            let pos = crate::GateKind::ALL.iter().position(|&g| g == k).unwrap();
            hist[pos] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    /// c17-like 3-level circuit.
    fn chain() -> (Netlist, Vec<NodeId>) {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate("g1", GateKind::Nand, vec![a, b]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Nand, vec![g1, b]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Nand, vec![g1, g2]).unwrap();
        nl.mark_output(g3);
        (nl, vec![a, b, g1, g2, g3])
    }

    #[test]
    fn topo_order_respects_edges() {
        let (nl, ids) = chain();
        let order = topo_order(&nl).unwrap();
        let pos: Vec<usize> = ids
            .iter()
            .map(|id| order.iter().position(|x| x == id).unwrap())
            .collect();
        assert!(pos[0] < pos[2]); // a before g1
        assert!(pos[2] < pos[3]); // g1 before g2
        assert!(pos[3] < pos[4]); // g2 before g3
    }

    #[test]
    fn levels_match_structure() {
        let (nl, ids) = chain();
        let lv = levelize(&nl).unwrap();
        assert_eq!(lv[ids[0].index()], 0);
        assert_eq!(lv[ids[2].index()], 1);
        assert_eq!(lv[ids[3].index()], 2);
        assert_eq!(lv[ids[4].index()], 3);
        assert_eq!(depth(&nl).unwrap(), 3);
    }

    #[test]
    fn fanout_cone() {
        let (nl, ids) = chain();
        let cone = transitive_fanout(&nl, &[ids[2]]); // from g1
        assert!(cone[ids[2].index()]);
        assert!(cone[ids[3].index()]);
        assert!(cone[ids[4].index()]);
        assert!(!cone[ids[0].index()]);
        assert!(!cone[ids[1].index()]);
    }

    #[test]
    fn fanin_cone() {
        let (nl, ids) = chain();
        let cone = transitive_fanin(&nl, &[ids[3]]); // from g2
        assert!(cone[ids[0].index()]);
        assert!(cone[ids[1].index()]);
        assert!(cone[ids[2].index()]);
        assert!(cone[ids[3].index()]);
        assert!(!cone[ids[4].index()]);
    }

    #[test]
    fn reachability() {
        let (nl, ids) = chain();
        assert!(reaches(&nl, ids[0], ids[4]));
        assert!(!reaches(&nl, ids[4], ids[0]));
    }

    #[test]
    fn dff_edges_do_not_count_as_combinational() {
        // a -> g -> dff -> g (a "cycle" through the DFF is fine)
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff_deferred("q").unwrap();
        let g = nl.add_gate("g", GateKind::Xor, vec![a, q]).unwrap();
        nl.connect_dff(q, g).unwrap();
        nl.mark_output(g);
        assert!(topo_order(&nl).is_ok());
        // The fan-out cone of g must not cross into q.
        let cone = transitive_fanout(&nl, &[g]);
        assert!(!cone[q.index()]);
    }

    #[test]
    fn histogram_counts_gates() {
        let (nl, _) = chain();
        let hist = gate_histogram(&nl);
        // NAND is index 1 in GateKind::ALL.
        assert_eq!(hist[1], 3);
        assert_eq!(hist.iter().sum::<usize>(), 3);
    }
}
