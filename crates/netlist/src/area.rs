//! Standard-cell area model (Nangate 45 nm Open Cell Library style).
//!
//! The paper's Table V reports the percentage area overhead of the
//! inserted trigger logic after synthesis with Cadence GENUS and the
//! Nangate 45 nm library. We have no proprietary synthesis tool, so this
//! module substitutes a cell-area table with the published Nangate cell
//! sizes (one row per gate function and fan-in). Because the paper's
//! overhead metric is `trigger-logic area / original-circuit area`, which
//! is purely additive over cells, a look-up-table model reproduces the
//! same quantity a trivial (no-optimization) synthesis run would report.
//!
//! Areas are in µm². Values follow the Nangate 45 nm datasheet pattern:
//! the base 2-input cells (NAND2_X1 = 0.798 µm², NOR2_X1 = 0.798 µm²,
//! AND2_X1 = 1.064 µm², OR2_X1 = 1.064 µm², XOR2_X1 = 1.596 µm²,
//! INV_X1 = 0.532 µm², BUF_X1 = 0.798 µm², DFF_X1 = 4.522 µm²) with
//! each additional fan-in costing one extra grid of 0.266 µm² × 2.

use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeKind};

/// Cell-area look-up model.
///
/// # Examples
///
/// ```
/// use htforge_netlist::{AreaModel, GateKind};
///
/// let model = AreaModel::nangate45();
/// let nand2 = model.gate_area(GateKind::Nand, 2);
/// let nand4 = model.gate_area(GateKind::Nand, 4);
/// assert!(nand4 > nand2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Base area of each 2-input (or 1-input for NOT/BUF) cell, indexed by
    /// position in [`GateKind::ALL`].
    base: [f64; 8],
    /// Incremental area per fan-in beyond the base arity.
    per_extra_input: f64,
    /// Area of one D flip-flop.
    dff: f64,
}

impl AreaModel {
    /// The Nangate 45 nm Open Cell Library-style model used throughout the
    /// reproduction (X1 drive strength).
    #[must_use]
    pub fn nangate45() -> Self {
        AreaModel {
            base: [
                1.064, // AND2_X1
                0.798, // NAND2_X1
                1.064, // OR2_X1
                0.798, // NOR2_X1
                1.596, // XOR2_X1
                1.596, // XNOR2_X1
                0.532, // INV_X1
                0.798, // BUF_X1
            ],
            per_extra_input: 0.532,
            dff: 4.522, // DFF_X1
        }
    }

    /// Area of a gate of `kind` with `fanin` inputs, in µm².
    #[must_use]
    pub fn gate_area(&self, kind: GateKind, fanin: usize) -> f64 {
        let pos = GateKind::ALL
            .iter()
            .position(|&g| g == kind)
            .expect("GateKind::ALL is exhaustive");
        let base_arity = if kind.is_unary() { 1 } else { 2 };
        let extra = fanin.saturating_sub(base_arity) as f64;
        self.base[pos] + extra * self.per_extra_input
    }

    /// Area of one DFF, in µm².
    #[must_use]
    pub fn dff_area(&self) -> f64 {
        self.dff
    }

    /// Total cell area of a netlist, in µm² (inputs are free).
    #[must_use]
    pub fn netlist_area(&self, nl: &Netlist) -> f64 {
        let mut total = 0.0;
        for (_, node) in nl.iter() {
            match node.kind() {
                NodeKind::Input => {}
                NodeKind::Dff => total += self.dff,
                NodeKind::Gate(kind) => {
                    total += self.gate_area(kind, node.fanins().len());
                }
            }
        }
        total
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::nangate45()
    }
}

/// Area comparison between a golden netlist and an infected one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Cell area of the original design, µm².
    pub original: f64,
    /// Cell area of the infected design, µm².
    pub infected: f64,
}

impl AreaReport {
    /// Compares `original` against `infected` under `model`.
    #[must_use]
    pub fn compare(model: &AreaModel, original: &Netlist, infected: &Netlist) -> Self {
        AreaReport {
            original: model.netlist_area(original),
            infected: model.netlist_area(infected),
        }
    }

    /// Absolute overhead, µm².
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.infected - self.original
    }

    /// Percentage overhead relative to the original (the Table V metric).
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        if self.original == 0.0 {
            0.0
        } else {
            100.0 * self.overhead() / self.original
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn nand_cheaper_than_and() {
        let m = AreaModel::nangate45();
        assert!(m.gate_area(GateKind::Nand, 2) < m.gate_area(GateKind::And, 2));
    }

    #[test]
    fn extra_fanin_costs_area() {
        let m = AreaModel::nangate45();
        let a2 = m.gate_area(GateKind::Nor, 2);
        let a3 = m.gate_area(GateKind::Nor, 3);
        let a4 = m.gate_area(GateKind::Nor, 4);
        assert!((a3 - a2 - m.per_extra_input).abs() < 1e-12);
        assert!((a4 - a3 - m.per_extra_input).abs() < 1e-12);
    }

    #[test]
    fn unary_base_arity_is_one() {
        let m = AreaModel::nangate45();
        assert_eq!(m.gate_area(GateKind::Not, 1), 0.532);
    }

    #[test]
    fn netlist_area_sums_cells() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::Nand, vec![a, b]).unwrap();
        let h = nl.add_gate("h", GateKind::Not, vec![g]).unwrap();
        nl.mark_output(h);
        let m = AreaModel::nangate45();
        assert!((m.netlist_area(&nl) - (0.798 + 0.532)).abs() < 1e-12);
    }

    #[test]
    fn overhead_percent() {
        let r = AreaReport {
            original: 100.0,
            infected: 105.4,
        };
        assert!((r.overhead_percent() - 5.4).abs() < 1e-9);
    }

    #[test]
    fn dffs_counted() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_dff("q", a).unwrap();
        nl.mark_output(q);
        let m = AreaModel::nangate45();
        assert!((m.netlist_area(&nl) - 4.522).abs() < 1e-12);
    }
}
