//! Error types for netlist construction and parsing.

use std::fmt;

/// Errors produced while building, validating, or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was declared with a signal name that already exists.
    DuplicateName(String),
    /// A gate references a signal name that was never defined.
    UndefinedSignal(String),
    /// A gate was given an arity its kind does not support
    /// (e.g. a 3-input NOT).
    BadArity {
        /// The offending gate's name.
        gate: String,
        /// The gate kind as written.
        kind: &'static str,
        /// The number of fan-ins supplied.
        got: usize,
    },
    /// A node id was out of range for this netlist.
    InvalidNodeId(u32),
    /// The netlist contains a combinational cycle (after scan cutting).
    CombinationalCycle {
        /// Name of one node on the cycle.
        witness: String,
    },
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An unknown gate type keyword was seen while parsing.
    UnknownGateKind {
        /// 1-based line number.
        line: usize,
        /// The keyword as written in the source.
        keyword: String,
    },
    /// A hierarchical design is malformed (bad port binding, multiple
    /// drivers, unknown module, …).
    Hierarchy {
        /// Name of the module where the problem was found.
        module: String,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => {
                write!(f, "duplicate signal name `{n}`")
            }
            NetlistError::UndefinedSignal(n) => {
                write!(f, "reference to undefined signal `{n}`")
            }
            NetlistError::BadArity { gate, kind, got } => {
                write!(f, "gate `{gate}` of kind {kind} given {got} fan-ins")
            }
            NetlistError::InvalidNodeId(id) => {
                write!(f, "node id {id} out of range")
            }
            NetlistError::CombinationalCycle { witness } => {
                write!(f, "combinational cycle through `{witness}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::UnknownGateKind { line, keyword } => {
                write!(f, "unknown gate kind `{keyword}` at line {line}")
            }
            NetlistError::Hierarchy { module, message } => {
                write!(f, "hierarchy error in module `{module}`: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetlistError::DuplicateName("n1".into());
        let s = e.to_string();
        assert!(s.starts_with("duplicate"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }

    #[test]
    fn parse_error_reports_line() {
        let e = NetlistError::Parse {
            line: 42,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("42"));
    }
}
