//! Logic gate kinds and their evaluation semantics.
//!
//! The gate vocabulary matches the ISCAS `.bench` format: `AND`, `NAND`,
//! `OR`, `NOR`, `XOR`, `XNOR`, `NOT`, `BUF` and (for ISCAS-89) `DFF`.
//! D flip-flops are represented at the [`NodeKind`](crate::NodeKind) level,
//! not here, because they are not combinational gates.

use std::fmt;
use std::str::FromStr;

/// A combinational gate function.
///
/// Multi-input kinds (`And`, `Nand`, `Or`, `Nor`, `Xor`, `Xnor`) accept any
/// fan-in ≥ 1; `Not` and `Buf` are strictly unary.
///
/// # Examples
///
/// ```
/// use htforge_netlist::GateKind;
///
/// assert_eq!(GateKind::Nand.eval_bits(&[0b1100, 0b1010]) & 0b1111, 0b0111);
/// assert_eq!("NAND".parse::<GateKind>(), Ok(GateKind::Nand));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Logical AND of all fan-ins.
    And,
    /// Complement of AND.
    Nand,
    /// Logical OR of all fan-ins.
    Or,
    /// Complement of OR.
    Nor,
    /// Parity (odd number of 1 inputs).
    Xor,
    /// Complement of parity.
    Xnor,
    /// Inverter (unary).
    Not,
    /// Buffer (unary identity).
    Buf,
}

impl GateKind {
    /// All gate kinds, in a stable order.
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// The dense code of this kind: its position in [`GateKind::ALL`].
    /// Used to pack kinds into one-byte columns.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            GateKind::And => 0,
            GateKind::Nand => 1,
            GateKind::Or => 2,
            GateKind::Nor => 3,
            GateKind::Xor => 4,
            GateKind::Xnor => 5,
            GateKind::Not => 6,
            GateKind::Buf => 7,
        }
    }

    /// Inverse of [`GateKind::code`].
    ///
    /// # Panics
    ///
    /// Panics if `code >= 8`.
    #[must_use]
    pub fn from_code(code: u8) -> GateKind {
        GateKind::ALL[code as usize]
    }

    /// Returns `true` if this kind only accepts exactly one fan-in.
    #[must_use]
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Returns `true` if the gate output is the complement of its
    /// non-inverting base function (NAND, NOR, XNOR, NOT).
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The associative word-wise fold underlying the gate's base
    /// (non-inverted) function. Every kind decomposes as
    /// `maybe-invert(fold(fanins))`: seed with the first fan-in column,
    /// fold the rest with this operator, complement if
    /// [`is_inverting`](GateKind::is_inverting). Unary kinds fold
    /// trivially (one fan-in, nothing to combine; `And` is returned as a
    /// neutral placeholder).
    #[must_use]
    pub fn fold_op(self) -> FoldOp {
        match self {
            GateKind::And | GateKind::Nand | GateKind::Not | GateKind::Buf => FoldOp::And,
            GateKind::Or | GateKind::Nor => FoldOp::Or,
            GateKind::Xor | GateKind::Xnor => FoldOp::Xor,
        }
    }

    /// The ISCAS `.bench` keyword for this kind.
    #[must_use]
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
        }
    }

    /// Checks whether `arity` fan-ins are legal for this kind.
    #[must_use]
    pub fn arity_ok(self, arity: usize) -> bool {
        if self.is_unary() {
            arity == 1
        } else {
            arity >= 1
        }
    }

    /// Evaluates the gate over bit-parallel words (64 input patterns at a
    /// time). Each element of `fanins` carries one bit per pattern.
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    #[must_use]
    pub fn eval_bits(self, fanins: &[u64]) -> u64 {
        assert!(!fanins.is_empty(), "gate evaluated with no fan-ins");
        match self {
            GateKind::And => fanins.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Nand => !fanins.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Or => fanins.iter().fold(0, |acc, &v| acc | v),
            GateKind::Nor => !fanins.iter().fold(0, |acc, &v| acc | v),
            GateKind::Xor => fanins.iter().fold(0, |acc, &v| acc ^ v),
            GateKind::Xnor => !fanins.iter().fold(0, |acc, &v| acc ^ v),
            GateKind::Not => !fanins[0],
            GateKind::Buf => fanins[0],
        }
    }

    /// Evaluates the gate over scalar booleans.
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    #[must_use]
    pub fn eval_bool(self, fanins: &[bool]) -> bool {
        assert!(!fanins.is_empty(), "gate evaluated with no fan-ins");
        match self {
            GateKind::And => fanins.iter().all(|&v| v),
            GateKind::Nand => !fanins.iter().all(|&v| v),
            GateKind::Or => fanins.iter().any(|&v| v),
            GateKind::Nor => !fanins.iter().any(|&v| v),
            GateKind::Xor => fanins.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !fanins.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Not => !fanins[0],
            GateKind::Buf => fanins[0],
        }
    }

    /// The *controlling value* of the gate, if it has one: an input at this
    /// value forces the output regardless of other inputs (0 for AND/NAND,
    /// 1 for OR/NOR). XOR-family and unary gates have none.
    #[must_use]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Output when an input is at the controlling value.
    ///
    /// Returns `None` for kinds without a controlling value.
    #[must_use]
    pub fn controlled_output(self) -> Option<bool> {
        match self {
            GateKind::And => Some(false),
            GateKind::Nand => Some(true),
            GateKind::Or => Some(true),
            GateKind::Nor => Some(false),
            _ => None,
        }
    }

    /// Output when *all* inputs are at the non-controlling value (or, for
    /// the XOR family and unary gates, `None` since it depends on parity).
    #[must_use]
    pub fn noncontrolled_output(self) -> Option<bool> {
        match self {
            GateKind::And => Some(true),
            GateKind::Nand => Some(false),
            GateKind::Or => Some(false),
            GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The output value this gate is inherently *biased against* producing
    /// — the rare output of the paper's trigger-synthesis discipline
    /// (§III-D). A `k`-input AND outputs 1 with probability `1/2^k`, so its
    /// rare output is 1; dually for the others. XOR-family and unary gates
    /// are unbiased and return `None`.
    #[must_use]
    pub fn rare_output(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nor => Some(true),
            GateKind::Nand | GateKind::Or => Some(false),
            _ => None,
        }
    }

    /// For gates with a rare output: the homogeneous input value required
    /// to produce that rare output (all-1 for AND/NAND, all-0 for OR/NOR).
    #[must_use]
    pub fn rare_input(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(true),
            GateKind::Or | GateKind::Nor => Some(false),
            _ => None,
        }
    }
}

/// The three associative bitwise folds gate functions are built from;
/// see [`GateKind::fold_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FoldOp {
    /// Bitwise AND (base of AND/NAND; placeholder for unary kinds).
    And,
    /// Bitwise OR (base of OR/NOR).
    Or,
    /// Bitwise XOR (base of XOR/XNOR).
    Xor,
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// Error returned when parsing a [`GateKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    keyword: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.keyword)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // `.bench` files are case-insensitive in practice; BUFF is a common
        // alias for BUF.
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            other => Err(ParseGateKindError {
                keyword: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_bits_matches_truth_tables() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        let mask = 0b1111u64;
        assert_eq!(GateKind::And.eval_bits(&[a, b]) & mask, 0b1000);
        assert_eq!(GateKind::Nand.eval_bits(&[a, b]) & mask, 0b0111);
        assert_eq!(GateKind::Or.eval_bits(&[a, b]) & mask, 0b1110);
        assert_eq!(GateKind::Nor.eval_bits(&[a, b]) & mask, 0b0001);
        assert_eq!(GateKind::Xor.eval_bits(&[a, b]) & mask, 0b0110);
        assert_eq!(GateKind::Xnor.eval_bits(&[a, b]) & mask, 0b1001);
        assert_eq!(GateKind::Not.eval_bits(&[a]) & mask, 0b0011);
        assert_eq!(GateKind::Buf.eval_bits(&[a]) & mask, 0b1100);
    }

    #[test]
    fn eval_bool_agrees_with_eval_bits_three_inputs() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for pattern in 0u64..8 {
                let bits: Vec<u64> = (0..3).map(|i| (pattern >> i) & 1).collect();
                let bools: Vec<bool> = bits.iter().map(|&b| b == 1).collect();
                assert_eq!(
                    kind.eval_bits(&bits) & 1,
                    u64::from(kind.eval_bool(&bools)),
                    "{kind} on {pattern:03b}"
                );
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for kind in GateKind::ALL {
            assert_eq!(kind.bench_keyword().parse::<GateKind>(), Ok(kind));
        }
        assert_eq!("buff".parse::<GateKind>(), Ok(GateKind::Buf));
        assert_eq!("inv".parse::<GateKind>(), Ok(GateKind::Not));
        assert!("MUX".parse::<GateKind>().is_err());
    }

    #[test]
    fn rare_output_and_input_are_consistent() {
        // Producing the rare output must require all inputs at rare_input.
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            let r_out = kind.rare_output().unwrap();
            let r_in = kind.rare_input().unwrap();
            assert_eq!(kind.eval_bool(&[r_in, r_in, r_in]), r_out);
            // Flipping any single input away from rare_input flips the output.
            assert_ne!(kind.eval_bool(&[!r_in, r_in, r_in]), r_out);
        }
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Nand.controlled_output(), Some(true));
        assert_eq!(GateKind::Nor.noncontrolled_output(), Some(true));
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::And.arity_ok(5));
        assert!(!GateKind::And.arity_ok(0));
    }

    #[test]
    #[should_panic(expected = "no fan-ins")]
    fn eval_with_no_fanins_panics() {
        let _ = GateKind::And.eval_bits(&[]);
    }
}
