//! Gate-level netlist substrate for the `htforge` hardware-trojan toolkit.
//!
//! This crate models combinational / full-scan sequential circuits as
//! directed acyclic graphs of logic gates, in the style of the ISCAS-85 and
//! ISCAS-89 benchmark suites that the reproduced paper evaluates on.
//!
//! The central type is [`Netlist`]: an indexed, struct-of-arrays DAG of
//! nodes, where each node is a primary input, a logic gate, or a D
//! flip-flop, borrowed through the [`NodeRef`] view. Names are interned
//! ([`intern::Atom`]) so industrial-scale designs (100k–1M+ gates) fit a
//! tight memory budget. Supporting modules provide:
//!
//! * [`bench`](mod@bench) — a streaming parser and writer for the ISCAS
//!   `.bench` format,
//! * [`hier`] — hierarchical multi-module designs with deterministic
//!   flattening,
//! * [`verilog`] — a structural-Verilog writer (for synthesis hand-off),
//! * [`graph`] — levelization, topological order, cones and reachability,
//! * [`area`] — a Nangate-45nm-style standard-cell area model used by the
//!   paper's Table V (area-overhead analysis),
//! * [`opt`] — dead-gate sweeping and constant folding for imported
//!   netlists.
//!
//! # Examples
//!
//! ```
//! use htforge_netlist::{Netlist, GateKind};
//!
//! # fn main() -> Result<(), htforge_netlist::NetlistError> {
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_gate("g", GateKind::Nand, vec![a, b])?;
//! nl.mark_output(g);
//! assert_eq!(nl.node_count(), 3);
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod bench;
pub mod error;
pub mod gate;
pub mod graph;
pub mod hier;
pub mod intern;
pub mod netlist;
pub mod opt;
pub mod verilog;

pub use area::{AreaModel, AreaReport};
pub use error::NetlistError;
pub use gate::{FoldOp, GateKind};
pub use hier::{Design, Module, ModuleId};
pub use intern::{Atom, SymbolTable};
pub use netlist::{Netlist, NodeId, NodeKind, NodeRef};
