//! The [`Netlist`] data structure: an indexed DAG of gates.
//!
//! # Representation (industrial-scale core)
//!
//! The netlist is stored struct-of-arrays with interned names:
//!
//! * **Names** live in a per-netlist [`SymbolTable`]; each node holds a
//!   4-byte [`Atom`] and a dense `atom → node` vector makes
//!   [`Netlist::find`] a single hash plus an array index. Name strings
//!   are materialized only at I/O boundaries ([`NodeRef::name`]).
//! * **Kinds** are one packed byte per node in a contiguous column.
//! * **Fan-ins** are a CSR: per-node `(offset, len)` into one shared
//!   `NodeId` pool. Deferred DFFs reserve their single slot up front so
//!   [`Netlist::connect_dff`] never shifts the pool.
//! * **Fan-outs** are a pooled adjacency with per-node
//!   `(offset, len, capacity)` and amortized-doubling relocation on
//!   append, so incremental construction (trojan insertion appends
//!   gates) stays O(1) amortized while consumers still see a contiguous
//!   `&[NodeId]` slice. Bulk builders (the streaming parsers, the
//!   hierarchy flattener) instead call [`Netlist::compact_fanouts`] once
//!   to build the exact CSR with zero slack.
//! * **Levels** are computed on demand and cached; any structural
//!   mutation invalidates the cache.
//!
//! Node data is borrowed through the lightweight [`NodeRef`] view, which
//! keeps the pre-SoA accessor API (`nl.node(id).fanins()`, `.name()`,
//! `.kind()`) source-compatible for every consumer crate.

use std::fmt;
use std::sync::OnceLock;

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::intern::{Atom, SymbolTable};

/// Identifier of a node (signal) within one [`Netlist`].
///
/// Node ids are dense indices assigned in creation order and remain stable
/// across [`Netlist::scan_cut`] and trojan insertion (which only appends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Useful for iterating over all nodes of a netlist; passing an index
    /// that is out of range for the netlist it is used with will surface as
    /// [`NetlistError::InvalidNodeId`] or a panic in indexing operations.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node *is*: a primary input, a combinational gate, or a DFF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input (no fan-ins).
    Input,
    /// Combinational gate of the given kind.
    Gate(GateKind),
    /// D flip-flop; the node models the Q output, its single fan-in is D.
    Dff,
}

impl NodeKind {
    /// Returns the gate kind if this node is a combinational gate.
    #[must_use]
    pub fn gate_kind(self) -> Option<GateKind> {
        match self {
            NodeKind::Gate(k) => Some(k),
            _ => None,
        }
    }
}

/// Packed one-byte node kind: `0` input, `1` DFF, `2 + k` gate of
/// [`GateKind`] code `k`.
pub(crate) const KIND_INPUT: u8 = 0;
pub(crate) const KIND_DFF: u8 = 1;
pub(crate) const KIND_GATE_BASE: u8 = 2;
/// `atom → node` slot for atoms with no node.
const NO_NODE: u32 = u32::MAX;

#[inline]
pub(crate) fn pack_kind(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::Input => KIND_INPUT,
        NodeKind::Dff => KIND_DFF,
        NodeKind::Gate(k) => KIND_GATE_BASE + k.code(),
    }
}

#[inline]
pub(crate) fn unpack_kind(packed: u8) -> NodeKind {
    match packed {
        KIND_INPUT => NodeKind::Input,
        KIND_DFF => NodeKind::Dff,
        g => NodeKind::Gate(GateKind::from_code(g - KIND_GATE_BASE)),
    }
}

/// Borrowed view of one signal-producing element of a netlist.
///
/// `NodeRef` is a `Copy` handle tying a [`NodeId`] to its [`Netlist`];
/// its accessors read straight out of the SoA columns, and the returned
/// borrows live as long as the netlist borrow (not the `NodeRef`), so
/// idioms like `nl.node(id).name().to_owned()` work unchanged.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'a> {
    nl: &'a Netlist,
    id: NodeId,
}

impl<'a> NodeRef<'a> {
    /// The node's id.
    #[must_use]
    pub fn id(self) -> NodeId {
        self.id
    }

    /// The node's signal name.
    #[must_use]
    pub fn name(self) -> &'a str {
        self.nl.name_of(self.id)
    }

    /// The node's interned name atom.
    #[must_use]
    pub fn atom(self) -> Atom {
        self.nl.atom(self.id)
    }

    /// The node's kind.
    #[must_use]
    pub fn kind(self) -> NodeKind {
        self.nl.kind(self.id)
    }

    /// Fan-in node ids, in gate-input order.
    #[must_use]
    pub fn fanins(self) -> &'a [NodeId] {
        self.nl.fanins(self.id)
    }

    /// Fan-out node ids (consumers of this signal).
    #[must_use]
    pub fn fanouts(self) -> &'a [NodeId] {
        self.nl.fanouts(self.id)
    }
}

/// A gate-level netlist: a named DAG of nodes with designated primary
/// inputs and outputs.
///
/// Sequential circuits (ISCAS-89) contain [`NodeKind::Dff`] nodes; call
/// [`Netlist::scan_cut`] to obtain the full-scan combinational model used
/// by simulation and ATPG, as is standard in the MERO / ND-ATPG literature.
///
/// # Examples
///
/// ```
/// use htforge_netlist::{Netlist, GateKind};
///
/// # fn main() -> Result<(), htforge_netlist::NetlistError> {
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let sum = nl.add_gate("sum", GateKind::Xor, vec![a, b])?;
/// let carry = nl.add_gate("carry", GateKind::And, vec![a, b])?;
/// nl.mark_output(sum);
/// nl.mark_output(carry);
/// assert_eq!(nl.inputs().len(), 2);
/// assert_eq!(nl.outputs().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    symbols: SymbolTable,
    /// Node → interned name.
    node_atom: Vec<Atom>,
    /// Atom → node id ([`NO_NODE`] when the atom names no node).
    atom_node: Vec<u32>,
    /// Packed node kind column (see [`pack_kind`]).
    kinds: Vec<u8>,
    /// Fan-in CSR: per-node offset/length into `fanin_pool`.
    fanin_off: Vec<u32>,
    fanin_len: Vec<u32>,
    fanin_pool: Vec<NodeId>,
    /// Fan-out pooled adjacency: per-node offset/length/capacity into
    /// `fanout_pool`; appends relocate with doubling.
    fanout_off: Vec<u32>,
    fanout_len: Vec<u32>,
    fanout_cap: Vec<u32>,
    fanout_pool: Vec<NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    /// O(1) `is_output` membership mirror of `outputs`.
    output_flag: Vec<bool>,
    dffs: Vec<NodeId>,
    /// Cached levelization; reset by every structural mutation.
    levels: OnceLock<Result<Vec<u32>, NetlistError>>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_capacity(name, 0, 0)
    }

    /// Creates an empty netlist pre-sized for `nodes` nodes and `edges`
    /// fan-in edges (bulk builders avoid re-allocation churn).
    #[must_use]
    pub fn with_capacity(name: impl Into<String>, nodes: usize, edges: usize) -> Self {
        Netlist {
            name: name.into(),
            symbols: SymbolTable::with_capacity(nodes, nodes * 8),
            node_atom: Vec::with_capacity(nodes),
            atom_node: Vec::with_capacity(nodes),
            kinds: Vec::with_capacity(nodes),
            fanin_off: Vec::with_capacity(nodes),
            fanin_len: Vec::with_capacity(nodes),
            fanin_pool: Vec::with_capacity(edges),
            fanout_off: Vec::with_capacity(nodes),
            fanout_len: Vec::with_capacity(nodes),
            fanout_cap: Vec::with_capacity(nodes),
            fanout_pool: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_flag: Vec::with_capacity(nodes),
            dffs: Vec::new(),
            levels: OnceLock::new(),
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total number of nodes (inputs + gates + DFFs).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_atom.len()
    }

    /// Number of combinational gates (excludes inputs and DFFs).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.kinds.iter().filter(|&&k| k >= KIND_GATE_BASE).count()
    }

    /// Primary inputs, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// D flip-flop nodes, in declaration order.
    #[must_use]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// The netlist's symbol table (names of every node).
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Looks up a node by signal name: one hash, one array index.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.symbols.lookup(name).and_then(|a| self.find_atom(a))
    }

    /// Looks up a node by its interned name atom (no hashing at all).
    #[must_use]
    pub fn find_atom(&self, atom: Atom) -> Option<NodeId> {
        match self.atom_node.get(atom.index()) {
            Some(&id) if id != NO_NODE => Some(NodeId(id)),
            _ => None,
        }
    }

    /// The interned name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this netlist.
    #[must_use]
    pub fn atom(&self, id: NodeId) -> Atom {
        self.node_atom[id.index()]
    }

    /// The name of a node (materialized from the interner).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this netlist.
    #[must_use]
    pub fn name_of(&self, id: NodeId) -> &str {
        self.symbols.resolve(self.node_atom[id.index()])
    }

    /// The kind of a node, unpacked from the kind column.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this netlist.
    #[must_use]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        unpack_kind(self.kinds[id.index()])
    }

    /// Fan-in node ids of a node, in gate-input order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this netlist.
    #[must_use]
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        let off = self.fanin_off[id.index()] as usize;
        let len = self.fanin_len[id.index()] as usize;
        &self.fanin_pool[off..off + len]
    }

    /// Fan-out node ids of a node (consumers of its signal).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this netlist.
    #[must_use]
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        let off = self.fanout_off[id.index()] as usize;
        let len = self.fanout_len[id.index()] as usize;
        &self.fanout_pool[off..off + len]
    }

    /// Borrows a node as a [`NodeRef`] view.
    ///
    /// # Panics
    ///
    /// Panics (in the accessors) if `id` is not a node of this netlist.
    #[must_use]
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef { nl: self, id }
    }

    /// Iterates over `(NodeId, NodeRef)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeRef<'_>)> + '_ {
        (0..self.node_atom.len() as u32).map(move |i| (NodeId(i), self.node(NodeId(i))))
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.node_atom.len() as u32).map(NodeId)
    }

    /// Logic level of every node (0 for inputs/DFFs), cached until the
    /// next structural mutation. Hot paths (the sim compiler, SCOAP)
    /// read this column instead of re-levelizing.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part is cyclic.
    pub fn levels(&self) -> Result<&[u32], NetlistError> {
        match self.levels.get_or_init(|| crate::graph::levelize(self)) {
            Ok(v) => Ok(v.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }

    /// A deterministic topological order: nodes counting-sorted by
    /// cached level, ties broken by id. Equivalent to (but cheaper and
    /// more cache-friendly than) [`crate::graph::topo_order`] for
    /// consumers that only need *some* topological order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part is cyclic.
    pub fn level_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        let levels = self.levels()?;
        let depth = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut bucket_off = vec![0u32; depth + 2];
        for &l in levels {
            bucket_off[l as usize + 1] += 1;
        }
        for i in 1..bucket_off.len() {
            bucket_off[i] += bucket_off[i - 1];
        }
        let mut order = vec![NodeId(0); levels.len()];
        for (i, &l) in levels.iter().enumerate() {
            order[bucket_off[l as usize] as usize] = NodeId(i as u32);
            bucket_off[l as usize] += 1;
        }
        Ok(order)
    }

    /// Approximate resident bytes of the core columns (used by the
    /// scaling benchmark's memory-budget rows).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.symbols.arena_bytes()
            + self.symbols.len() * (size_of::<(u32, u32)>() + size_of::<u32>())
            + self.node_atom.capacity() * size_of::<Atom>()
            + self.atom_node.capacity() * size_of::<u32>()
            + self.kinds.capacity()
            + (self.fanin_off.capacity() + self.fanin_len.capacity()) * size_of::<u32>()
            + self.fanin_pool.capacity() * size_of::<NodeId>()
            + (self.fanout_off.capacity() + self.fanout_len.capacity() + self.fanout_cap.capacity())
                * size_of::<u32>()
            + self.fanout_pool.capacity() * size_of::<NodeId>()
            + (self.inputs.capacity() + self.outputs.capacity() + self.dffs.capacity())
                * size_of::<NodeId>()
            + self.output_flag.capacity()
    }

    /// A stable digest of the netlist structure: node names, kinds,
    /// fan-in wiring and output markings (the design name is excluded).
    /// Two netlists with the same nodes in the same order hash equal;
    /// useful as a dedup / change-detection key for compiled artifacts.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        let mut h = crate::intern::fx_hash(b"htforge-netlist-v1");
        let mix = |h: u64, w: u64| -> u64 {
            (h.rotate_left(5) ^ w).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
        };
        h = mix(h, self.kinds.len() as u64);
        for id in self.node_ids() {
            let name = self.name_of(id);
            h = mix(h, crate::intern::fx_hash(name.as_bytes()));
            h = mix(h, u64::from(self.kinds[id.index()]));
            let fanins = self.fanins(id);
            h = mix(h, fanins.len() as u64);
            for &f in fanins {
                h = mix(h, u64::from(f.0));
            }
            h = mix(h, u64::from(self.output_flag[id.index()]));
        }
        h
    }

    /// Resets caches derived from structure (levelization).
    #[inline]
    fn touch(&mut self) {
        self.levels = OnceLock::new();
    }

    /// Interns `name`, keeping the `atom → node` map dense.
    pub(crate) fn intern_name(&mut self, name: &str) -> Atom {
        let atom = self.symbols.intern(name);
        if atom.index() == self.atom_node.len() {
            self.atom_node.push(NO_NODE);
        }
        atom
    }

    /// Appends a node for `atom` with no fan-ins yet.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the atom already names
    /// a node.
    pub(crate) fn push_raw(&mut self, atom: Atom, packed_kind: u8) -> Result<NodeId, NetlistError> {
        if self.atom_node[atom.index()] != NO_NODE {
            return Err(NetlistError::DuplicateName(
                self.symbols.resolve(atom).to_owned(),
            ));
        }
        let id = NodeId(self.node_atom.len() as u32);
        self.atom_node[atom.index()] = id.0;
        self.node_atom.push(atom);
        self.kinds.push(packed_kind);
        self.fanin_off.push(self.fanin_pool.len() as u32);
        self.fanin_len.push(0);
        self.fanout_off.push(0);
        self.fanout_len.push(0);
        self.fanout_cap.push(0);
        self.output_flag.push(false);
        match packed_kind {
            KIND_INPUT => self.inputs.push(id),
            KIND_DFF => self.dffs.push(id),
            _ => {}
        }
        self.touch();
        Ok(id)
    }

    /// Sets a node's fan-ins in bulk (streaming-parser/flattener path).
    /// Fan-out lists are **not** updated; call [`Netlist::compact_fanouts`]
    /// once after all fan-ins are set.
    pub(crate) fn set_fanins_raw(&mut self, id: NodeId, fanins: &[NodeId]) {
        debug_assert_eq!(self.fanin_len[id.index()], 0, "fan-ins set twice");
        self.fanin_off[id.index()] = self.fanin_pool.len() as u32;
        self.fanin_len[id.index()] = fanins.len() as u32;
        self.fanin_pool.extend_from_slice(fanins);
        self.touch();
    }

    /// Appends `consumer` to `node`'s fan-out list, relocating the run
    /// with doubled capacity when full (amortized O(1)).
    fn fanout_push(&mut self, node: NodeId, consumer: NodeId) {
        let i = node.index();
        let len = self.fanout_len[i];
        if len == self.fanout_cap[i] {
            let new_cap = (self.fanout_cap[i] * 2).max(2);
            let old_off = self.fanout_off[i] as usize;
            let new_off = self.fanout_pool.len();
            self.fanout_pool
                .extend_from_within(old_off..old_off + len as usize);
            self.fanout_pool
                .resize(new_off + new_cap as usize, NodeId(u32::MAX));
            self.fanout_off[i] = new_off as u32;
            self.fanout_cap[i] = new_cap;
        }
        let off = self.fanout_off[i] as usize;
        self.fanout_pool[off + len as usize] = consumer;
        self.fanout_len[i] = len + 1;
    }

    /// Keeps only the fan-outs of `node` satisfying `keep` (in place).
    fn fanout_retain(&mut self, node: NodeId, keep: impl Fn(NodeId) -> bool) {
        let i = node.index();
        let off = self.fanout_off[i] as usize;
        let len = self.fanout_len[i] as usize;
        let mut write = off;
        for read in off..off + len {
            let c = self.fanout_pool[read];
            if keep(c) {
                self.fanout_pool[write] = c;
                write += 1;
            }
        }
        self.fanout_len[i] = (write - off) as u32;
    }

    /// Rebuilds every fan-out list as an exact CSR over one fresh pool
    /// (capacity == length, consumers in id order, duplicate edges kept).
    /// Bulk builders call this once instead of paying per-edge appends;
    /// it is also a defragmenter after heavy incremental editing.
    pub fn compact_fanouts(&mut self) {
        let n = self.node_count();
        let mut counts = vec![0u32; n];
        for &f in &self.fanin_pool[..] {
            if f.index() < n {
                counts[f.index()] += 1;
            }
        }
        // Only count edges that are live (within some node's fan-in run).
        // The pool may hold dead runs from in-place edits; recount from
        // the per-node views instead when sizes disagree.
        let live_edges: usize = self.fanin_len.iter().map(|&l| l as usize).sum();
        if live_edges != self.fanin_pool.len() {
            counts.iter_mut().for_each(|c| *c = 0);
            for id in 0..n {
                for &f in self.fanins(NodeId(id as u32)) {
                    counts[f.index()] += 1;
                }
            }
        }
        let mut off = 0u32;
        for (i, &c) in counts.iter().enumerate() {
            self.fanout_off[i] = off;
            self.fanout_len[i] = 0;
            self.fanout_cap[i] = c;
            off += c;
        }
        let mut pool = vec![NodeId(u32::MAX); off as usize];
        for id in 0..n {
            let consumer = NodeId(id as u32);
            let from = self.fanin_off[id] as usize;
            let to = from + self.fanin_len[id] as usize;
            for k in from..to {
                let f = self.fanin_pool[k].index();
                pool[(self.fanout_off[f] + self.fanout_len[f]) as usize] = consumer;
                self.fanout_len[f] += 1;
            }
        }
        self.fanout_pool = pool;
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken (inputs come first in practice;
    /// use [`Netlist::try_add_input`] for a fallible variant).
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.try_add_input(name)
            .expect("duplicate primary input name")
    }

    /// Adds a primary input, failing on a duplicate name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn try_add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = name.into();
        let atom = self.intern_name(&name);
        self.push_raw(atom, KIND_INPUT)
    }

    /// Adds a combinational gate driven by `fanins`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken,
    /// [`NetlistError::BadArity`] if the fan-in count is illegal for
    /// `kind`, or [`NetlistError::InvalidNodeId`] if a fan-in id is out of
    /// range.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        let name = name.into();
        if !kind.arity_ok(fanins.len()) {
            return Err(NetlistError::BadArity {
                gate: name,
                kind: kind.bench_keyword(),
                got: fanins.len(),
            });
        }
        for &f in &fanins {
            if f.index() >= self.node_count() {
                return Err(NetlistError::InvalidNodeId(f.0));
            }
        }
        let atom = self.intern_name(&name);
        let id = self.push_raw(atom, KIND_GATE_BASE + kind.code())?;
        self.set_fanins_raw(id, &fanins);
        for &f in &fanins {
            self.fanout_push(f, id);
        }
        Ok(id)
    }

    /// Adds a D flip-flop whose D input is `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash or
    /// [`NetlistError::InvalidNodeId`] if `d` is out of range.
    pub fn add_dff(&mut self, name: impl Into<String>, d: NodeId) -> Result<NodeId, NetlistError> {
        if d.index() >= self.node_count() {
            return Err(NetlistError::InvalidNodeId(d.0));
        }
        let name = name.into();
        let atom = self.intern_name(&name);
        let id = self.push_raw(atom, KIND_DFF)?;
        self.set_fanins_raw(id, &[d]);
        self.fanout_push(d, id);
        Ok(id)
    }

    /// Adds a D flip-flop whose D driver will be connected later with
    /// [`Netlist::connect_dff`]. Needed by parsers because `.bench` files
    /// may reference a DFF's Q before defining its D driver.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash.
    pub fn add_dff_deferred(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = name.into();
        let atom = self.intern_name(&name);
        let id = self.push_raw(atom, KIND_DFF)?;
        // Reserve the single D slot now so connect_dff never shifts the
        // fan-in pool.
        self.fanin_off[id.index()] = self.fanin_pool.len() as u32;
        self.fanin_pool.push(NodeId(u32::MAX));
        Ok(id)
    }

    /// Connects the D input of a deferred DFF.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNodeId`] if either id is out of range
    /// or `dff` is not a DFF with an unconnected D input.
    pub fn connect_dff(&mut self, dff: NodeId, d: NodeId) -> Result<(), NetlistError> {
        if dff.index() >= self.node_count() || d.index() >= self.node_count() {
            return Err(NetlistError::InvalidNodeId(dff.0.max(d.0)));
        }
        if self.kinds[dff.index()] != KIND_DFF || self.fanin_len[dff.index()] != 0 {
            return Err(NetlistError::InvalidNodeId(dff.0));
        }
        let off = self.fanin_off[dff.index()] as usize;
        self.fanin_pool[off] = d;
        self.fanin_len[dff.index()] = 1;
        self.fanout_push(d, dff);
        self.touch();
        Ok(())
    }

    /// Marks a node as a primary output. A node may be marked at most once;
    /// repeated marks are ignored.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.output_flag[id.index()] {
            self.output_flag[id.index()] = true;
            self.outputs.push(id);
        }
    }

    /// Returns `true` if `id` is a primary output (O(1)).
    #[must_use]
    pub fn is_output(&self, id: NodeId) -> bool {
        self.output_flag[id.index()]
    }

    /// Produces the *full-scan* combinational model: every DFF becomes a
    /// pseudo primary input (its Q), and its D driver becomes a pseudo
    /// primary output. Node ids are preserved.
    ///
    /// The returned netlist contains no `Dff` nodes, so it is a pure DAG of
    /// gates suitable for bit-parallel simulation and PODEM.
    #[must_use]
    pub fn scan_cut(&self) -> Netlist {
        let mut out = self.clone();
        out.name = format!("{}_scan", self.name);
        out.touch();
        let dffs = std::mem::take(&mut out.dffs);
        for &dff in &dffs {
            let d = out.fanins(dff).first().copied();
            // Drop the Q←D edge (and the fanout back-reference), then
            // retype the DFF as an input.
            out.fanin_len[dff.index()] = 0;
            if let Some(d) = d {
                out.fanout_retain(d, |c| c != dff);
                // D driver becomes a pseudo-PO.
                out.mark_output(d);
            }
            out.kinds[dff.index()] = KIND_INPUT;
            out.inputs.push(dff);
        }
        out
    }

    /// Splices a new driver in front of all existing fan-outs of `victim`:
    /// every gate that consumed `victim` now consumes `new_driver` instead.
    /// Primary-output markings on `victim` transfer to `new_driver`.
    ///
    /// This is the payload-insertion primitive: insert an XOR of
    /// `(victim, trigger)` and splice it over `victim`.
    ///
    /// The fan-outs rewritten are those that existed *before* `new_driver`
    /// itself was added, so `new_driver` may (and typically does) take
    /// `victim` as one of its own fan-ins without creating a self-loop.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or if `victim == new_driver`.
    pub fn splice_driver(&mut self, victim: NodeId, new_driver: NodeId) {
        assert_ne!(victim, new_driver, "cannot splice a node over itself");
        let consumers: Vec<NodeId> = self
            .fanouts(victim)
            .iter()
            .copied()
            .filter(|&c| c != new_driver)
            .collect();
        for &c in &consumers {
            let from = self.fanin_off[c.index()] as usize;
            let to = from + self.fanin_len[c.index()] as usize;
            for slot in &mut self.fanin_pool[from..to] {
                if *slot == victim {
                    *slot = new_driver;
                }
            }
            self.fanout_push(new_driver, c);
        }
        self.fanout_retain(victim, |c| c == new_driver);
        if let Some(pos) = self.outputs.iter().position(|&o| o == victim) {
            self.output_flag[victim.index()] = false;
            if self.output_flag[new_driver.index()] {
                self.outputs.remove(pos);
            } else {
                self.output_flag[new_driver.index()] = true;
                self.outputs[pos] = new_driver;
            }
        }
        self.touch();
    }

    /// Validates structural invariants: every fan-in id in range, fan-out
    /// lists consistent with fan-ins, DFFs fully connected, and the
    /// combinational part acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.node_count();
        for id in self.node_ids() {
            for &f in self.fanins(id) {
                if f.index() >= n {
                    return Err(NetlistError::InvalidNodeId(f.0));
                }
                if !self.fanouts(f).contains(&id) {
                    return Err(NetlistError::UndefinedSignal(self.name_of(id).to_owned()));
                }
            }
            let got = self.fanin_len[id.index()] as usize;
            match self.kind(id) {
                NodeKind::Input => {
                    if got != 0 {
                        return Err(NetlistError::BadArity {
                            gate: self.name_of(id).to_owned(),
                            kind: "INPUT",
                            got,
                        });
                    }
                }
                NodeKind::Dff => {
                    if got != 1 {
                        return Err(NetlistError::BadArity {
                            gate: self.name_of(id).to_owned(),
                            kind: "DFF",
                            got,
                        });
                    }
                }
                NodeKind::Gate(k) => {
                    if !k.arity_ok(got) {
                        return Err(NetlistError::BadArity {
                            gate: self.name_of(id).to_owned(),
                            kind: k.bench_keyword(),
                            got,
                        });
                    }
                }
            }
        }
        // Acyclicity of the combinational part (DFF edges are cut).
        crate::graph::topo_order(self).map(|_| ())
    }

    /// Test-only raw edge injection (builds deliberately broken graphs).
    #[cfg(test)]
    pub(crate) fn add_fanin_edge_for_test(&mut self, gate: NodeId, extra: NodeId) {
        let old: Vec<NodeId> = self.fanins(gate).to_vec();
        self.fanin_off[gate.index()] = self.fanin_pool.len() as u32;
        self.fanin_len[gate.index()] = old.len() as u32 + 1;
        self.fanin_pool.extend_from_slice(&old);
        self.fanin_pool.push(extra);
        self.fanout_push(extra, gate);
        self.touch();
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, {} dffs",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gate_count(),
            self.dffs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_gate("s", GateKind::Xor, vec![a, b]).unwrap();
        let c = nl.add_gate("c", GateKind::And, vec![a, b]).unwrap();
        nl.mark_output(s);
        nl.mark_output(c);
        nl
    }

    #[test]
    fn build_and_lookup() {
        let nl = half_adder();
        assert_eq!(nl.node_count(), 4);
        assert_eq!(nl.gate_count(), 2);
        let s = nl.find("s").unwrap();
        assert_eq!(nl.node(s).kind(), NodeKind::Gate(GateKind::Xor));
        assert_eq!(nl.node(s).fanins().len(), 2);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        assert_eq!(
            nl.add_gate("a", GateKind::Buf, vec![a]),
            Err(NetlistError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        assert!(matches!(
            nl.add_gate("g", GateKind::Not, vec![a, b]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn fanouts_are_maintained() {
        let nl = half_adder();
        let a = nl.find("a").unwrap();
        assert_eq!(nl.node(a).fanouts().len(), 2);
    }

    #[test]
    fn names_resolve_through_the_interner() {
        let nl = half_adder();
        let s = nl.find("s").unwrap();
        assert_eq!(nl.node(s).name(), "s");
        assert_eq!(nl.name_of(s), "s");
        let atom = nl.atom(s);
        assert_eq!(nl.find_atom(atom), Some(s));
        assert_eq!(nl.symbols().resolve(atom), "s");
    }

    #[test]
    fn scan_cut_preserves_ids_and_cuts_dffs() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff_deferred("q").unwrap();
        let g = nl.add_gate("g", GateKind::Nand, vec![a, q]).unwrap();
        nl.connect_dff(q, g).unwrap();
        nl.mark_output(g);
        assert!(nl.validate().is_ok());

        let cut = nl.scan_cut();
        assert!(cut.validate().is_ok());
        assert_eq!(cut.dffs().len(), 0);
        assert_eq!(cut.inputs().len(), 2); // a + pseudo-input q
        assert!(cut.outputs().contains(&g)); // g is both PO and pseudo-PO
        assert_eq!(cut.node(q).kind(), NodeKind::Input);
        // Ids stable:
        assert_eq!(cut.find("q"), Some(q));
        assert_eq!(cut.find("g"), Some(g));
    }

    #[test]
    fn scan_cut_adds_pseudo_po_for_d_driver() {
        let mut nl = Netlist::new("seq2");
        let a = nl.add_input("a");
        let inv = nl.add_gate("inv", GateKind::Not, vec![a]).unwrap();
        let q = nl.add_dff("q", inv).unwrap();
        let out = nl.add_gate("out", GateKind::Buf, vec![q]).unwrap();
        nl.mark_output(out);
        let cut = nl.scan_cut();
        assert!(cut.outputs().contains(&inv));
        assert!(cut.outputs().contains(&out));
    }

    #[test]
    fn splice_driver_rewires_consumers_and_outputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let v = nl.add_gate("v", GateKind::And, vec![a, b]).unwrap();
        let sink = nl.add_gate("sink", GateKind::Not, vec![v]).unwrap();
        nl.mark_output(v);
        nl.mark_output(sink);
        // payload: xor of (v, b) spliced over v
        let xor = nl.add_gate("xor", GateKind::Xor, vec![v, b]).unwrap();
        nl.splice_driver(v, xor);
        assert_eq!(nl.node(sink).fanins(), &[xor]);
        assert!(nl.is_output(xor));
        assert!(!nl.is_output(v));
        // v still feeds the xor itself
        assert_eq!(nl.node(v).fanouts(), &[xor]);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn validate_detects_cycle() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let g1 = nl.add_gate("g1", GateKind::And, vec![a, a]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Or, vec![g1]).unwrap();
        // Manually create a cycle g1 <- g2.
        nl.add_fanin_edge_for_test(g1, g2);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn levels_cache_and_invalidate() {
        let mut nl = half_adder();
        let s = nl.find("s").unwrap();
        assert_eq!(nl.levels().unwrap()[s.index()], 1);
        // Structural mutation invalidates: a new gate over s is level 2.
        let g = nl.add_gate("g", GateKind::Not, vec![s]).unwrap();
        assert_eq!(nl.levels().unwrap()[g.index()], 2);
        // level_order is a valid topological order.
        let order = nl.level_order().unwrap();
        assert_eq!(order.len(), nl.node_count());
        let pos: Vec<usize> = nl
            .node_ids()
            .map(|id| order.iter().position(|&x| x == id).unwrap())
            .collect();
        for id in nl.node_ids() {
            for &f in nl.fanins(id) {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn compact_fanouts_is_an_exact_rebuild() {
        let mut nl = half_adder();
        let before: Vec<Vec<NodeId>> = nl.node_ids().map(|id| nl.fanouts(id).to_vec()).collect();
        nl.compact_fanouts();
        let after: Vec<Vec<NodeId>> = nl.node_ids().map(|id| nl.fanouts(id).to_vec()).collect();
        assert_eq!(before, after);
        // Pool is exactly the edge count after compaction.
        let edges: usize = nl.node_ids().map(|id| nl.fanins(id).len()).sum();
        let fanout_total: usize = nl.node_ids().map(|id| nl.fanouts(id).len()).sum();
        assert_eq!(edges, fanout_total);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn display_summary() {
        let nl = half_adder();
        let s = nl.to_string();
        assert!(s.contains("2 inputs"));
        assert!(s.contains("2 gates"));
    }

    #[test]
    fn structural_hash_tracks_structure_not_design_name() {
        let a = half_adder();
        let mut b = half_adder();
        b.set_name("renamed");
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Changing wiring changes the hash.
        let mut c = half_adder();
        let sum = c.find("s").unwrap();
        let carry = c.find("c").unwrap();
        c.splice_driver(sum, carry);
        assert_ne!(a.structural_hash(), c.structural_hash());

        // Changing output markings changes the hash.
        let mut d = half_adder();
        let pi = d.find("a").unwrap();
        d.mark_output(pi);
        assert_ne!(a.structural_hash(), d.structural_hash());
    }
}
