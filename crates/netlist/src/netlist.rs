//! The [`Netlist`] data structure: an indexed DAG of gates.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::GateKind;

/// Identifier of a node (signal) within one [`Netlist`].
///
/// Node ids are dense indices assigned in creation order and remain stable
/// across [`Netlist::scan_cut`] and trojan insertion (which only appends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Useful for iterating over all nodes of a netlist; passing an index
    /// that is out of range for the netlist it is used with will surface as
    /// [`NetlistError::InvalidNodeId`] or a panic in indexing operations.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node *is*: a primary input, a combinational gate, or a DFF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input (no fan-ins).
    Input,
    /// Combinational gate of the given kind.
    Gate(GateKind),
    /// D flip-flop; the node models the Q output, its single fan-in is D.
    Dff,
}

impl NodeKind {
    /// Returns the gate kind if this node is a combinational gate.
    #[must_use]
    pub fn gate_kind(self) -> Option<GateKind> {
        match self {
            NodeKind::Gate(k) => Some(k),
            _ => None,
        }
    }
}

/// One signal-producing element of a netlist.
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    kind: NodeKind,
    fanins: Vec<NodeId>,
    fanouts: Vec<NodeId>,
}

impl Node {
    /// The node's signal name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Fan-in node ids, in gate-input order.
    #[must_use]
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// Fan-out node ids (consumers of this signal).
    #[must_use]
    pub fn fanouts(&self) -> &[NodeId] {
        &self.fanouts
    }
}

/// A gate-level netlist: a named DAG of [`Node`]s with designated primary
/// inputs and outputs.
///
/// Sequential circuits (ISCAS-89) contain [`NodeKind::Dff`] nodes; call
/// [`Netlist::scan_cut`] to obtain the full-scan combinational model used
/// by simulation and ATPG, as is standard in the MERO / ND-ATPG literature.
///
/// # Examples
///
/// ```
/// use htforge_netlist::{Netlist, GateKind};
///
/// # fn main() -> Result<(), htforge_netlist::NetlistError> {
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let sum = nl.add_gate("sum", GateKind::Xor, vec![a, b])?;
/// let carry = nl.add_gate("carry", GateKind::And, vec![a, b])?;
/// nl.mark_output(sum);
/// nl.mark_output(carry);
/// assert_eq!(nl.inputs().len(), 2);
/// assert_eq!(nl.outputs().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    by_name: HashMap<String, NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total number of nodes (inputs + gates + DFFs).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of combinational gates (excludes inputs and DFFs).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Gate(_)))
            .count()
    }

    /// Primary inputs, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// D flip-flop nodes, in declaration order.
    #[must_use]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Looks up a node by signal name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this netlist.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over `(NodeId, &Node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    fn fresh_name(&mut self, name: impl Into<String>) -> Result<String, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        Ok(name)
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(node.name.clone(), id);
        for &f in &node.fanins {
            self.nodes[f.index()].fanouts.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken (inputs come first in practice;
    /// use [`Netlist::try_add_input`] for a fallible variant).
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.try_add_input(name)
            .expect("duplicate primary input name")
    }

    /// Adds a primary input, failing on a duplicate name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn try_add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = self.fresh_name(name)?;
        let id = self.push_node(Node {
            name,
            kind: NodeKind::Input,
            fanins: Vec::new(),
            fanouts: Vec::new(),
        });
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a combinational gate driven by `fanins`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken,
    /// [`NetlistError::BadArity`] if the fan-in count is illegal for
    /// `kind`, or [`NetlistError::InvalidNodeId`] if a fan-in id is out of
    /// range.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        let name = self.fresh_name(name)?;
        if !kind.arity_ok(fanins.len()) {
            return Err(NetlistError::BadArity {
                gate: name,
                kind: kind.bench_keyword(),
                got: fanins.len(),
            });
        }
        for &f in &fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::InvalidNodeId(f.0));
            }
        }
        Ok(self.push_node(Node {
            name,
            kind: NodeKind::Gate(kind),
            fanins,
            fanouts: Vec::new(),
        }))
    }

    /// Adds a D flip-flop whose D input is `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash or
    /// [`NetlistError::InvalidNodeId`] if `d` is out of range.
    pub fn add_dff(&mut self, name: impl Into<String>, d: NodeId) -> Result<NodeId, NetlistError> {
        let name = self.fresh_name(name)?;
        if d.index() >= self.nodes.len() {
            return Err(NetlistError::InvalidNodeId(d.0));
        }
        let id = self.push_node(Node {
            name,
            kind: NodeKind::Dff,
            fanins: vec![d],
            fanouts: Vec::new(),
        });
        self.dffs.push(id);
        Ok(id)
    }

    /// Adds a D flip-flop whose D driver will be connected later with
    /// [`Netlist::connect_dff`]. Needed by parsers because `.bench` files
    /// may reference a DFF's Q before defining its D driver.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash.
    pub fn add_dff_deferred(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = self.fresh_name(name)?;
        let id = self.push_node(Node {
            name,
            kind: NodeKind::Dff,
            fanins: Vec::new(),
            fanouts: Vec::new(),
        });
        self.dffs.push(id);
        Ok(id)
    }

    /// Connects the D input of a deferred DFF.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNodeId`] if either id is out of range
    /// or `dff` is not a DFF with an unconnected D input.
    pub fn connect_dff(&mut self, dff: NodeId, d: NodeId) -> Result<(), NetlistError> {
        if dff.index() >= self.nodes.len() || d.index() >= self.nodes.len() {
            return Err(NetlistError::InvalidNodeId(dff.0.max(d.0)));
        }
        {
            let node = &self.nodes[dff.index()];
            if node.kind != NodeKind::Dff || !node.fanins.is_empty() {
                return Err(NetlistError::InvalidNodeId(dff.0));
            }
        }
        self.nodes[dff.index()].fanins.push(d);
        self.nodes[d.index()].fanouts.push(dff);
        Ok(())
    }

    /// Marks a node as a primary output. A node may be marked at most once;
    /// repeated marks are ignored.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Returns `true` if `id` is a primary output.
    #[must_use]
    pub fn is_output(&self, id: NodeId) -> bool {
        self.outputs.contains(&id)
    }

    /// Produces the *full-scan* combinational model: every DFF becomes a
    /// pseudo primary input (its Q), and its D driver becomes a pseudo
    /// primary output. Node ids are preserved.
    ///
    /// The returned netlist contains no `Dff` nodes, so it is a pure DAG of
    /// gates suitable for bit-parallel simulation and PODEM.
    #[must_use]
    pub fn scan_cut(&self) -> Netlist {
        let mut out = self.clone();
        out.name = format!("{}_scan", self.name);
        // Drop DFF fan-in edges first (removes Q←D edges and the fanout
        // back-references), then retype DFFs as inputs.
        for &dff in &self.dffs {
            let d = out.nodes[dff.index()].fanins.first().copied();
            out.nodes[dff.index()].fanins.clear();
            if let Some(d) = d {
                out.nodes[d.index()].fanouts.retain(|&x| x != dff);
                // D driver becomes a pseudo-PO.
                if !out.outputs.contains(&d) {
                    out.outputs.push(d);
                }
            }
            out.nodes[dff.index()].kind = NodeKind::Input;
            out.inputs.push(dff);
        }
        out.dffs.clear();
        out
    }

    /// Splices a new driver in front of all existing fan-outs of `victim`:
    /// every gate that consumed `victim` now consumes `new_driver` instead.
    /// Primary-output markings on `victim` transfer to `new_driver`.
    ///
    /// This is the payload-insertion primitive: insert an XOR of
    /// `(victim, trigger)` and splice it over `victim`.
    ///
    /// The fan-outs rewritten are those that existed *before* `new_driver`
    /// itself was added, so `new_driver` may (and typically does) take
    /// `victim` as one of its own fan-ins without creating a self-loop.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or if `victim == new_driver`.
    pub fn splice_driver(&mut self, victim: NodeId, new_driver: NodeId) {
        assert_ne!(victim, new_driver, "cannot splice a node over itself");
        let consumers: Vec<NodeId> = self.nodes[victim.index()]
            .fanouts
            .iter()
            .copied()
            .filter(|&c| c != new_driver)
            .collect();
        for c in &consumers {
            for f in &mut self.nodes[c.index()].fanins {
                if *f == victim {
                    *f = new_driver;
                }
            }
            self.nodes[new_driver.index()].fanouts.push(*c);
        }
        self.nodes[victim.index()]
            .fanouts
            .retain(|&c| c == new_driver);
        if let Some(pos) = self.outputs.iter().position(|&o| o == victim) {
            if self.outputs.contains(&new_driver) {
                self.outputs.remove(pos);
            } else {
                self.outputs[pos] = new_driver;
            }
        }
    }

    /// Validates structural invariants: every fan-in id in range, fan-out
    /// lists consistent with fan-ins, DFFs fully connected, and the
    /// combinational part acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, node) in self.iter() {
            for &f in &node.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::InvalidNodeId(f.0));
                }
                if !self.nodes[f.index()].fanouts.contains(&id) {
                    return Err(NetlistError::UndefinedSignal(node.name.clone()));
                }
            }
            match node.kind {
                NodeKind::Input => {
                    if !node.fanins.is_empty() {
                        return Err(NetlistError::BadArity {
                            gate: node.name.clone(),
                            kind: "INPUT",
                            got: node.fanins.len(),
                        });
                    }
                }
                NodeKind::Dff => {
                    if node.fanins.len() != 1 {
                        return Err(NetlistError::BadArity {
                            gate: node.name.clone(),
                            kind: "DFF",
                            got: node.fanins.len(),
                        });
                    }
                }
                NodeKind::Gate(k) => {
                    if !k.arity_ok(node.fanins.len()) {
                        return Err(NetlistError::BadArity {
                            gate: node.name.clone(),
                            kind: k.bench_keyword(),
                            got: node.fanins.len(),
                        });
                    }
                }
            }
        }
        // Acyclicity of the combinational part (DFF edges are cut).
        crate::graph::topo_order(self).map(|_| ())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, {} dffs",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gate_count(),
            self.dffs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_gate("s", GateKind::Xor, vec![a, b]).unwrap();
        let c = nl.add_gate("c", GateKind::And, vec![a, b]).unwrap();
        nl.mark_output(s);
        nl.mark_output(c);
        nl
    }

    #[test]
    fn build_and_lookup() {
        let nl = half_adder();
        assert_eq!(nl.node_count(), 4);
        assert_eq!(nl.gate_count(), 2);
        let s = nl.find("s").unwrap();
        assert_eq!(nl.node(s).kind(), NodeKind::Gate(GateKind::Xor));
        assert_eq!(nl.node(s).fanins().len(), 2);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        assert_eq!(
            nl.add_gate("a", GateKind::Buf, vec![a]),
            Err(NetlistError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        assert!(matches!(
            nl.add_gate("g", GateKind::Not, vec![a, b]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn fanouts_are_maintained() {
        let nl = half_adder();
        let a = nl.find("a").unwrap();
        assert_eq!(nl.node(a).fanouts().len(), 2);
    }

    #[test]
    fn scan_cut_preserves_ids_and_cuts_dffs() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff_deferred("q").unwrap();
        let g = nl.add_gate("g", GateKind::Nand, vec![a, q]).unwrap();
        nl.connect_dff(q, g).unwrap();
        nl.mark_output(g);
        assert!(nl.validate().is_ok());

        let cut = nl.scan_cut();
        assert!(cut.validate().is_ok());
        assert_eq!(cut.dffs().len(), 0);
        assert_eq!(cut.inputs().len(), 2); // a + pseudo-input q
        assert!(cut.outputs().contains(&g)); // g is both PO and pseudo-PO
        assert_eq!(cut.node(q).kind(), NodeKind::Input);
        // Ids stable:
        assert_eq!(cut.find("q"), Some(q));
        assert_eq!(cut.find("g"), Some(g));
    }

    #[test]
    fn scan_cut_adds_pseudo_po_for_d_driver() {
        let mut nl = Netlist::new("seq2");
        let a = nl.add_input("a");
        let inv = nl.add_gate("inv", GateKind::Not, vec![a]).unwrap();
        let q = nl.add_dff("q", inv).unwrap();
        let out = nl.add_gate("out", GateKind::Buf, vec![q]).unwrap();
        nl.mark_output(out);
        let cut = nl.scan_cut();
        assert!(cut.outputs().contains(&inv));
        assert!(cut.outputs().contains(&out));
    }

    #[test]
    fn splice_driver_rewires_consumers_and_outputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let v = nl.add_gate("v", GateKind::And, vec![a, b]).unwrap();
        let sink = nl.add_gate("sink", GateKind::Not, vec![v]).unwrap();
        nl.mark_output(v);
        nl.mark_output(sink);
        // payload: xor of (v, b) spliced over v
        let xor = nl.add_gate("xor", GateKind::Xor, vec![v, b]).unwrap();
        nl.splice_driver(v, xor);
        assert_eq!(nl.node(sink).fanins(), &[xor]);
        assert!(nl.is_output(xor));
        assert!(!nl.is_output(v));
        // v still feeds the xor itself
        assert_eq!(nl.node(v).fanouts(), &[xor]);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn validate_detects_cycle() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let g1 = nl.add_gate("g1", GateKind::And, vec![a, a]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Or, vec![g1]).unwrap();
        // Manually create a cycle g1 <- g2.
        nl.nodes[g1.index()].fanins.push(g2);
        nl.nodes[g2.index()].fanouts.push(g1);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn display_summary() {
        let nl = half_adder();
        let s = nl.to_string();
        assert!(s.contains("2 inputs"));
        assert!(s.contains("2 gates"));
    }
}
