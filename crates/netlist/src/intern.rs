//! String interning for signal names: the [`Atom`] symbol table.
//!
//! Industrial-scale netlists carry hundreds of thousands to millions of
//! signal names. Storing each as an owned `String` (24 bytes of header
//! plus a heap allocation) and hashing it on every lookup dominates both
//! memory and parse time well before the graph itself does. The
//! [`SymbolTable`] here replaces that with:
//!
//! * one contiguous byte arena holding every distinct name exactly once,
//! * a `(start, end)` span per atom (8 bytes), and
//! * an open-addressing hash table of `u32` atom indices using an
//!   FxHash-style multiply hash, so interning or looking up a name costs
//!   a single hash and a short probe run — no per-name allocation, no
//!   `SipHash` setup, no second hashing of the stored key.
//!
//! [`Atom`]s are dense `u32` handles: equality is an integer compare, and
//! side tables indexed by atom (e.g. the netlist's atom → node map) are
//! plain vectors. Names are materialized back to `&str` only at I/O
//! boundaries via [`SymbolTable::resolve`].

use std::fmt;

/// Handle to an interned string within one [`SymbolTable`].
///
/// Atoms are dense indices assigned in first-intern order; they are only
/// meaningful relative to the table that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(pub(crate) u32);

impl Atom {
    /// The dense index of this atom.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// FxHash multiplier (the Firefox hash constant): fast and good enough
/// for short identifier keys, where SipHash's DoS resistance buys
/// nothing but setup cost.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Empty slot marker in the open-addressing table.
const EMPTY: u32 = u32::MAX;

/// FxHash-style multiply hash over `bytes`, eight bytes at a time.
#[must_use]
pub fn fx_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        h = (h.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
    let mut tail: u64 = 0;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    if !chunks.remainder().is_empty() {
        h = (h.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }
    // Final mix so short keys spread across the table's low bits.
    (h ^ (h >> 32)).wrapping_mul(FX_SEED)
}

/// An append-only interner mapping strings to dense [`Atom`] handles.
///
/// # Examples
///
/// ```
/// use htforge_netlist::intern::SymbolTable;
///
/// let mut syms = SymbolTable::new();
/// let a = syms.intern("n42");
/// let b = syms.intern("n43");
/// assert_ne!(a, b);
/// assert_eq!(syms.intern("n42"), a);
/// assert_eq!(syms.resolve(a), "n42");
/// assert_eq!(syms.lookup("n43"), Some(b));
/// assert_eq!(syms.lookup("n44"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Every distinct name, concatenated.
    arena: String,
    /// Atom → `(start, end)` byte span in `arena`.
    spans: Vec<(u32, u32)>,
    /// Open-addressing table of atom indices (power-of-two size).
    table: Vec<u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SymbolTable {
            arena: String::new(),
            spans: Vec::new(),
            table: Vec::new(),
        }
    }

    /// Creates an empty table sized for about `capacity` distinct names
    /// and `bytes` total name bytes without rehashing or re-allocating.
    #[must_use]
    pub fn with_capacity(capacity: usize, bytes: usize) -> Self {
        let slots = (capacity * 2).next_power_of_two().max(16);
        SymbolTable {
            arena: String::with_capacity(bytes),
            spans: Vec::with_capacity(capacity),
            table: vec![EMPTY; slots],
        }
    }

    /// Number of distinct interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes held by the name arena (capacity, not length — the
    /// figure memory-budget accounting wants).
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.arena.capacity()
    }

    /// The name an atom stands for.
    ///
    /// # Panics
    ///
    /// Panics if `atom` is not from this table.
    #[must_use]
    pub fn resolve(&self, atom: Atom) -> &str {
        let (start, end) = self.spans[atom.index()];
        &self.arena[start as usize..end as usize]
    }

    /// Looks up an already-interned name without inserting.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (fx_hash(name.as_bytes()) as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY {
                return None;
            }
            if self.resolve(Atom(entry)) == name {
                return Some(Atom(entry));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns a name, returning its (possibly pre-existing) atom.
    pub fn intern(&mut self, name: &str) -> Atom {
        if self.spans.len() * 2 >= self.table.len() {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut slot = (fx_hash(name.as_bytes()) as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY {
                break;
            }
            if self.resolve(Atom(entry)) == name {
                return Atom(entry);
            }
            slot = (slot + 1) & mask;
        }
        let atom = Atom(self.spans.len() as u32);
        let start = self.arena.len() as u32;
        self.arena.push_str(name);
        self.spans.push((start, self.arena.len() as u32));
        self.table[slot] = atom.0;
        atom
    }

    /// Doubles the probe table and re-seats every atom. Spans and the
    /// arena are untouched, so atoms stay valid.
    fn grow(&mut self) {
        let new_size = (self.table.len() * 2).max(16);
        self.table.clear();
        self.table.resize(new_size, EMPTY);
        let mask = new_size - 1;
        for (i, &(start, end)) in self.spans.iter().enumerate() {
            let name = &self.arena[start as usize..end as usize];
            let mut slot = (fx_hash(name.as_bytes()) as usize) & mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = i as u32;
        }
    }

    /// Iterates `(Atom, &str)` pairs in first-intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, &str)> + '_ {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, &(start, end))| (Atom(i as u32), &self.arena[start as usize..end as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("alpha");
        let b = syms.intern("beta");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(syms.intern("alpha"), a);
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut syms = SymbolTable::new();
        let names = ["", "x", "a_very_long_signal_name/with/path", "n1", "n1 "];
        let atoms: Vec<Atom> = names.iter().map(|n| syms.intern(n)).collect();
        for (atom, name) in atoms.iter().zip(names) {
            assert_eq!(syms.resolve(*atom), name);
        }
        assert_eq!(syms.len(), names.len());
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut syms = SymbolTable::new();
        assert_eq!(syms.lookup("ghost"), None);
        let a = syms.intern("real");
        assert_eq!(syms.lookup("real"), Some(a));
        assert_eq!(syms.lookup("ghost"), None);
        assert_eq!(syms.len(), 1);
    }

    #[test]
    fn survives_growth_past_many_entries() {
        let mut syms = SymbolTable::with_capacity(4, 16);
        let atoms: Vec<Atom> = (0..10_000).map(|i| syms.intern(&format!("n{i}"))).collect();
        for (i, atom) in atoms.iter().enumerate() {
            assert_eq!(syms.resolve(*atom), format!("n{i}"));
            assert_eq!(syms.lookup(&format!("n{i}")), Some(*atom));
        }
        assert_eq!(syms.len(), 10_000);
    }

    #[test]
    fn iter_in_first_intern_order() {
        let mut syms = SymbolTable::new();
        syms.intern("b");
        syms.intern("a");
        syms.intern("b");
        let collected: Vec<&str> = syms.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["b", "a"]);
    }

    #[test]
    fn fx_hash_differs_on_common_shapes() {
        // Not a distribution test — just pins that near-identical short
        // identifiers don't collide to the same 64-bit hash.
        let names = ["n1", "n2", "n10", "g1", "G1", "n1_", "", "a"];
        let hashes: Vec<u64> = names.iter().map(|n| fx_hash(n.as_bytes())).collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{} vs {}", names[i], names[j]);
            }
        }
    }
}
