//! Streamed job progress: `htforge.job_progress/v1` frames on the
//! response channel, interleaved before the terminal result.
//!
//! A [`ProgressEmitter`] is created per running job and shared with the
//! worker's span hook, so pipeline phases observed inside the insertion
//! framework stream out live without the framework knowing about the
//! server. Emission is **best-effort by construction**: every frame
//! passes through the `server.progress` faultpoint inside [`isolate`],
//! and any injected fault (or panic) drops *that frame* — counted in
//! `server.progress_dropped` — while the job and its terminal response
//! proceed untouched. The exactly-one-terminal-response invariant never
//! depends on the progress path.

use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use htforge_obs::{faultpoint, isolate, ProgressFrame, SpanEvent, SpanHook};

use crate::protocol::{JobKind, JobProgress, Response};

/// The insertion-pipeline phase spans streamed as progress frames, in
/// execution order (the span hook ignores every other span name).
pub const PIPELINE_PHASES: &[&str] = &[
    "preprocess",
    "rare_extraction",
    "compat_graph",
    "clique_enumeration",
    "insertion",
    "validation",
];

/// Minimum spacing between `percent` frames for one job, so a tight
/// chunk loop cannot flood the response stream.
const PERCENT_INTERVAL: Duration = Duration::from_millis(250);

/// Per-job progress frame source. Cheap to share (`Arc`) between the
/// executor and the worker's span hook.
#[derive(Debug)]
pub struct ProgressEmitter {
    /// `None` = progress disabled (config off, or a detached test
    /// executor): every emit is a no-op.
    tx: Option<Sender<Response>>,
    tenant: String,
    id: String,
    kind: JobKind,
    trace: String,
    started: Instant,
    /// Staged-budget weights `(phase, weight)` for this job's circuit
    /// class; drives phase-boundary ETAs. Empty for unstaged kinds.
    weights: Vec<(String, f64)>,
    last_percent: Mutex<Option<Instant>>,
}

impl ProgressEmitter {
    /// An emitter streaming frames for one job onto `tx`.
    #[must_use]
    pub fn new(
        tx: Sender<Response>,
        tenant: String,
        id: String,
        kind: JobKind,
        trace: String,
        weights: Vec<(String, f64)>,
    ) -> Self {
        ProgressEmitter {
            tx: Some(tx),
            tenant,
            id,
            kind,
            trace,
            started: Instant::now(),
            weights,
            // The window starts at construction: a job that finishes
            // inside one interval emits no interim percent frames at
            // all — on a single-core host every frame is a context
            // switch stolen from the worker.
            last_percent: Mutex::new(Some(Instant::now())),
        }
    }

    /// An emitter that drops everything (progress disabled, and direct
    /// [`execute`](crate::execute) calls in tests).
    #[must_use]
    pub fn disabled() -> Self {
        ProgressEmitter {
            tx: None,
            tenant: String::new(),
            id: String::new(),
            kind: JobKind::Simulate,
            trace: String::new(),
            started: Instant::now(),
            weights: Vec::new(),
            last_percent: Mutex::new(None),
        }
    }

    /// Whether frames can reach a client at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.tx.is_some()
    }

    /// Streams a phase-entered frame, with an ETA extrapolated from the
    /// staged-budget weights when this phase is a staged one and some
    /// weighted work is already behind us.
    pub fn phase_enter(&self, phase: &str) {
        let mut frame = ProgressFrame::event(phase, "enter");
        frame.eta_ms = self.staged_eta(phase);
        self.emit(frame);
    }

    /// Streams a phase-completed frame carrying the phase duration.
    pub fn phase_complete(&self, phase: &str, dur_ms: f64) {
        let mut frame = ProgressFrame::event(phase, "complete");
        frame.detail = Some(format!("{dur_ms:.3} ms"));
        self.emit(frame);
    }

    /// Streams a percent-done frame, rate-limited to one per
    /// [`PERCENT_INTERVAL`] (the first window opens at construction);
    /// the ETA extrapolates the job's own elapsed time.
    /// `percent == 100` always goes out (completion edge).
    pub fn percent(&self, phase: &str, percent: f64) {
        if self.tx.is_none() {
            return;
        }
        let now = Instant::now();
        {
            let mut last = self.last_percent.lock().unwrap();
            let throttled =
                last.is_some_and(|t| now.duration_since(t) < PERCENT_INTERVAL) && percent < 100.0;
            if throttled {
                return;
            }
            *last = Some(now);
        }
        let mut frame = ProgressFrame::event(phase, "progress");
        frame.percent = Some(percent.clamp(0.0, 100.0));
        if percent > 0.0 && percent < 100.0 {
            let elapsed_ms = self.started.elapsed().as_secs_f64() * 1e3;
            frame.eta_ms = Some(elapsed_ms * (100.0 - percent) / percent);
        }
        self.emit(frame);
    }

    /// Streams a degradation note as it is taken.
    pub fn degraded(&self, phase: &str, detail: &str) {
        let mut frame = ProgressFrame::event(phase, "degraded");
        frame.detail = Some(detail.to_owned());
        self.emit(frame);
    }

    /// ETA for entering `phase`: remaining staged weight scaled by the
    /// observed pace of the completed weight.
    fn staged_eta(&self, phase: &str) -> Option<f64> {
        let idx = self.weights.iter().position(|(p, _)| p == phase)?;
        let done: f64 = self.weights[..idx].iter().map(|(_, w)| w).sum();
        let remaining: f64 = self.weights[idx..].iter().map(|(_, w)| w).sum();
        if done <= 0.0 {
            return None;
        }
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1e3;
        Some(elapsed_ms * remaining / done)
    }

    /// Sends one frame through the `server.progress` faultpoint. An
    /// injected error or panic drops the frame (counted), never the
    /// job.
    fn emit(&self, frame: ProgressFrame) {
        let Some(tx) = &self.tx else { return };
        let pass = isolate("server.progress", || !faultpoint::fire("server.progress"));
        if pass != Ok(true) {
            htforge_obs::counter("server.progress_dropped").incr();
            return;
        }
        let _ = tx.send(Response::Progress(Box::new(JobProgress {
            tenant: self.tenant.clone(),
            id: self.id.clone(),
            kind: self.kind,
            trace: self.trace.clone(),
            frame: frame.to_json(),
        })));
    }

    /// A span hook streaming the [`PIPELINE_PHASES`] spans as
    /// enter/complete frames; install on the worker thread for the
    /// duration of the job.
    #[must_use]
    pub fn span_hook(self: &Arc<Self>) -> SpanHook {
        let emitter = Arc::clone(self);
        Arc::new(move |name: &str, event: SpanEvent| {
            if !PIPELINE_PHASES.contains(&name) {
                return;
            }
            match event {
                SpanEvent::Enter => emitter.phase_enter(name),
                SpanEvent::Exit(dur) => {
                    emitter.phase_complete(name, dur.as_secs_f64() * 1e3);
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_obs::faultpoint::Action;
    use std::sync::mpsc;

    fn emitter(tx: Sender<Response>) -> Arc<ProgressEmitter> {
        Arc::new(ProgressEmitter::new(
            tx,
            "t".into(),
            "j".into(),
            JobKind::Insert,
            "00000000deadbeef".into(),
            vec![
                ("rare_extraction".into(), 0.25),
                ("compat_graph".into(), 0.52),
                ("clique_enumeration".into(), 0.14),
                ("insertion".into(), 0.09),
            ],
        ))
    }

    fn recv_frame(rx: &mpsc::Receiver<Response>) -> JobProgress {
        match rx.try_recv().expect("a frame") {
            Response::Progress(p) => *p,
            other => panic!("expected progress, got {other:?}"),
        }
    }

    #[test]
    fn frames_are_schema_valid_and_carry_identity() {
        let (tx, rx) = mpsc::channel();
        let e = emitter(tx);
        e.phase_enter("rare_extraction");
        e.phase_complete("rare_extraction", 12.5);
        e.degraded("clique_enumeration", "sampled 100 of 5000");
        for _ in 0..3 {
            let p = recv_frame(&rx);
            assert_eq!(p.tenant, "t");
            assert_eq!(p.trace, "00000000deadbeef");
            htforge_obs::validate_job_progress(&p.frame).unwrap();
        }
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn staged_eta_appears_once_weighted_work_is_behind() {
        let (tx, rx) = mpsc::channel();
        let e = emitter(tx);
        // First staged phase: nothing completed yet, no ETA to give.
        e.phase_enter("rare_extraction");
        assert!(recv_frame(&rx).frame.get("eta_ms").is_none());
        // Later phase: 0.25 of the weight is behind us, ETA present.
        std::thread::sleep(Duration::from_millis(5));
        e.phase_enter("compat_graph");
        let frame = recv_frame(&rx).frame;
        let eta = frame.get("eta_ms").unwrap().as_f64().unwrap();
        assert!(eta > 0.0, "{frame:?}");
    }

    #[test]
    fn percent_frames_are_rate_limited_but_100_gets_through() {
        let (tx, rx) = mpsc::channel();
        let e = emitter(tx);
        for i in 0..50 {
            e.percent("simulate", f64::from(i));
        }
        e.percent("simulate", 100.0);
        let frames: Vec<Response> = rx.try_iter().collect();
        // The window opens at construction, so everything below 100%
        // falls inside it; only the 100% completion edge must pass.
        assert!(frames.len() <= 2, "flooded: {} frames", frames.len());
        assert!(!frames.is_empty(), "100% must always pass");
        let Some(Response::Progress(last)) = frames.last() else {
            panic!("expected progress frames");
        };
        assert_eq!(last.frame.get("percent").unwrap().as_f64(), Some(100.0));
    }

    #[test]
    fn injected_progress_fault_drops_frames_not_the_channel() {
        let (tx, rx) = mpsc::channel();
        let e = emitter(tx);
        let dropped = htforge_obs::counter("server.progress_dropped");
        let before = dropped.get();
        faultpoint::arm("server.progress", Action::Err);
        e.phase_enter("rare_extraction");
        faultpoint::disarm_all();
        assert!(rx.try_recv().is_err(), "faulted frame must not be sent");
        assert_eq!(dropped.get(), before + 1);
        // The emitter keeps working after the fault clears.
        e.phase_enter("compat_graph");
        assert_eq!(
            recv_frame(&rx).frame.get("phase").unwrap().as_str(),
            Some("compat_graph")
        );
    }

    #[test]
    fn disabled_emitter_is_inert() {
        let e = ProgressEmitter::disabled();
        assert!(!e.is_enabled());
        e.phase_enter("rare_extraction");
        e.percent("simulate", 50.0);
        e.degraded("insertion", "x");
    }
}
