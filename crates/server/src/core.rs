//! The job-queue core: admission, scheduling, workers, responses.
//!
//! One [`Server`] owns a priority queue and a small worker pool over
//! the existing kernel thread path. Every accepted job gets **exactly
//! one terminal [`Response::Result`]** — done, failed, cancelled or
//! timeout — no matter what happens in between: executor panics are
//! caught by [`isolate`], budget trips map to `cancelled`/`timeout`,
//! and an injected `server.respond` fault degrades the response body
//! through a fallback path that bypasses the faultpoint. The chaos and
//! concurrency suites count on that invariant ("zero lost jobs").
//!
//! Scheduling order: higher `priority` first, then earlier deadline,
//! then FIFO submission order. Deadlines are admission deadlines — the
//! clock starts at submission, so a job that waits out its own deadline
//! in the queue completes as `timeout` without ever touching a worker.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use htforge_core::{PhaseProfileStore, STAGED_PHASES};
use htforge_obs::faultpoint;
use htforge_obs::{
    install_span_hook, isolate, metrics_snapshot_json, CancelToken, JobTimeline, Json, RunBudget,
    RunReport, SpanEntry, TraceContext,
};

use crate::cache::ProgramCache;
use crate::exec::{execute, ExecOutcome};
use crate::journal::{Journal, JournalConfig, JournalEvent};
use crate::progress::ProgressEmitter;
use crate::protocol::{parse_request, JobKind, JobResult, JobSpec, JobStatus, Request, Response};

/// Per-tenant admission control. Every limit defaults to `0` =
/// unlimited, so a plain [`ServerConfig::default`] behaves exactly as
/// before admission control existed.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Bound on the queue depth (queued, not running). A submit that
    /// would exceed it is shed with a structured `queue_full`
    /// rejection instead of growing the queue without bound.
    pub max_queue_depth: usize,
    /// Per-tenant cap on active (queued + running) jobs.
    pub tenant_max_active: usize,
    /// Per-tenant token-bucket refill rate (submits per second).
    pub tenant_rate_per_sec: f64,
    /// Token-bucket capacity (burst size); `0` defaults to
    /// `max(rate, 1)`.
    pub tenant_burst: f64,
    /// Retry-after hint stamped on `queue_full` rejections (rate-limit
    /// rejections compute theirs from the bucket deficit).
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queue_depth: 0,
            tenant_max_active: 0,
            tenant_rate_per_sec: 0.0,
            tenant_burst: 0.0,
            retry_after_ms: 250,
        }
    }
}

impl AdmissionConfig {
    fn burst(&self) -> f64 {
        if self.tenant_burst > 0.0 {
            self.tenant_burst
        } else {
            self.tenant_rate_per_sec.max(1.0)
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (0 = one per available core, capped at 8).
    pub workers: usize,
    /// Tenant assigned to requests that do not name one.
    pub default_tenant: String,
    /// Stream `htforge.job_progress/v1` frames for running jobs
    /// (default on; the bench A/B flips this off to price the overhead).
    pub progress: bool,
    /// Write-ahead job journal (`None` = in-memory only, the
    /// pre-durability behavior). With a journal, startup replays the
    /// segment and re-enqueues accepted-but-not-terminal jobs.
    pub journal: Option<JournalConfig>,
    /// Admission control; the default imposes no limits.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            default_tenant: "default".to_owned(),
            progress: true,
            journal: None,
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8)
    }
}

/// Lifetime totals, snapshot via [`Server::stats`]. These are *local*
/// to one server (the global obs counters are process-wide and shared
/// across tests); the obs `server.*` metrics mirror them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that finished `done`.
    pub completed: u64,
    /// Jobs that finished `failed` (errors and isolated panics).
    pub failed: u64,
    /// Jobs that finished `cancelled`.
    pub cancelled: u64,
    /// Jobs that finished `timeout`.
    pub timeout: u64,
    /// Responses degraded by the `server.respond` fallback path.
    pub degraded_responses: u64,
    /// Submits shed by admission control (`queue_full`/`rate_limit`);
    /// rejected jobs are *not* accepted and get no terminal response.
    pub rejected: u64,
}

impl StatsSnapshot {
    /// Terminal responses emitted (every accepted job produces one).
    #[must_use]
    pub fn finished(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.timeout
    }
}

#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    timeout: AtomicU64,
    degraded_responses: AtomicU64,
    rejected: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timeout: self.timeout.load(Ordering::Relaxed),
            degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    fn count_terminal(&self, status: JobStatus) {
        let (local, name) = match status {
            JobStatus::Done => (&self.completed, "server.jobs_completed"),
            JobStatus::Failed => (&self.failed, "server.jobs_failed"),
            JobStatus::Cancelled => (&self.cancelled, "server.jobs_cancelled"),
            JobStatus::Timeout => (&self.timeout, "server.jobs_timeout"),
        };
        local.fetch_add(1, Ordering::Relaxed);
        htforge_obs::counter(name).incr();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    /// Cancelled while queued: the terminal response is already out;
    /// the worker drops the heap entry on pop.
    Tombstoned,
}

#[derive(Debug)]
struct JobEntry {
    token: CancelToken,
    phase: Phase,
}

/// What one worker thread is doing right now (`status` introspection).
#[derive(Debug, Clone)]
enum WorkerState {
    Idle,
    Busy {
        tenant: String,
        id: String,
        kind: JobKind,
    },
}

struct QueuedJob {
    seq: u64,
    deadline: Option<Instant>,
    submitted: Instant,
    /// Root trace context minted at submission; the worker adopts it so
    /// every span, frame and report line of this job shares one id.
    trace: TraceContext,
    /// The session that submitted the job; its responses (progress and
    /// terminal) route back there, falling back to session 0 when the
    /// connection is gone (recovered jobs start on session 0).
    session: u64,
    spec: JobSpec,
}

impl QueuedJob {
    fn order(&self, other: &Self) -> CmpOrdering {
        self.spec
            .priority
            .cmp(&other.spec.priority)
            .then_with(|| match (self.deadline, other.deadline) {
                // Earlier deadline runs first; no deadline runs last.
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => CmpOrdering::Greater,
                (None, Some(_)) => CmpOrdering::Less,
                (None, None) => CmpOrdering::Equal,
            })
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == CmpOrdering::Equal
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.order(other)
    }
}

/// Per-tenant admission state: active-job count plus a token bucket.
struct TenantState {
    active: usize,
    tokens: f64,
    refreshed: Instant,
}

struct Inner {
    queue: BinaryHeap<QueuedJob>,
    jobs: HashMap<(String, String), JobEntry>,
    /// `Some(drop_queued)` once shutdown was requested.
    shutdown: Option<bool>,
    seq: u64,
    in_flight: usize,
    worker_states: Vec<WorkerState>,
    tenants: HashMap<String, TenantState>,
}

/// What journal replay found at startup (exposed through the `metrics`
/// op and [`Server::recovery`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryInfo {
    /// Whether a journal is configured at all.
    pub enabled: bool,
    /// Valid records replayed from the segment.
    pub replayed_records: u64,
    /// Terminal records among them (jobs already complete).
    pub terminal_records: u64,
    /// Accepted-but-not-terminal jobs re-enqueued at startup.
    pub recovered_jobs: u64,
    /// Torn/corrupt tail bytes truncated off the segment.
    pub truncated_bytes: u64,
    /// Wall-clock replay duration.
    pub recovery_ms: f64,
    /// Replay failed (injected fault or undecodable segment); the
    /// server restarted on a fresh segment instead of dying.
    pub replay_failed: bool,
}

struct Core {
    inner: Mutex<Inner>,
    cv: Condvar,
    cache: Arc<ProgramCache>,
    stats: Stats,
    /// Response routing: session id → that session's response channel.
    /// Session 0 is the primary channel handed out by [`Server::start`]
    /// and the fallback for responses whose session is gone. Lock
    /// order: `inner` before `sessions`, never the reverse
    /// (`respond_terminal` runs under `inner` on the cancel and
    /// shutdown-drop paths).
    sessions: Mutex<HashMap<u64, Sender<Response>>>,
    next_session: AtomicU64,
    progress_enabled: bool,
    admission: AdmissionConfig,
    /// The write-ahead journal; locked after `inner` (same ordering
    /// argument as `sessions`).
    journal: Option<Mutex<Journal>>,
    recovery: RecoveryInfo,
    /// Terminal results whose submitting session died before delivery,
    /// parked for the `pickup` op (bounded FIFO — oldest evicted at
    /// [`PARKED_TERMINALS_CAP`]). Leaf lock: never held across another
    /// lock acquisition.
    parked: Mutex<VecDeque<JobResult>>,
}

/// Bound on parked terminals retained for `pickup`.
const PARKED_TERMINALS_CAP: usize = 1024;

impl Core {
    /// Routes one response to its session, falling back to session 0
    /// when the session is gone (disconnected socket client); a
    /// response no channel can take is counted, never a panic.
    fn send_to(&self, session: u64, resp: Response) {
        let sessions = self.sessions.lock().unwrap();
        let mut resp = Some(resp);
        if let Some(tx) = sessions.get(&session) {
            match tx.send(resp.take().unwrap()) {
                Ok(()) => return,
                Err(e) => resp = Some(e.0),
            }
        }
        if session != 0 {
            if let Some(tx) = sessions.get(&0) {
                if tx.send(resp.take().unwrap()).is_ok() {
                    return;
                }
            }
        }
        htforge_obs::counter("server.responses_orphaned").incr();
    }

    /// The response sender for `session`, falling back to session 0
    /// (progress emitters clone this once per job at pop time).
    fn session_sender(&self, session: u64) -> Option<Sender<Response>> {
        let sessions = self.sessions.lock().unwrap();
        sessions.get(&session).or_else(|| sessions.get(&0)).cloned()
    }

    /// Sends `resp` to every open session (the final shutdown line).
    fn broadcast(&self, resp: &Response) {
        let sessions = self.sessions.lock().unwrap();
        for tx in sessions.values() {
            let _ = tx.send(resp.clone());
        }
    }

    /// Appends one record to the journal through the
    /// `server.journal_append` faultpoint. Failures (injected or real
    /// I/O) degrade durability — counted, logged via counter, job
    /// unaffected — they never lose or block the job itself.
    fn journal_append(&self, event: &JournalEvent) {
        let Some(journal) = &self.journal else { return };
        let appended = isolate("server.journal_append", || {
            if faultpoint::fire("server.journal_append") {
                return false;
            }
            let mut j = match journal.lock() {
                Ok(j) => j,
                Err(poisoned) => poisoned.into_inner(),
            };
            j.append(event).is_ok()
        });
        if appended == Ok(true) {
            htforge_obs::counter("server.journal_appends").incr();
        } else {
            htforge_obs::counter("server.journal_append_errors").incr();
        }
    }

    /// Fsyncs the journal regardless of policy (drain path).
    fn journal_sync(&self) {
        if let Some(journal) = &self.journal {
            let mut j = match journal.lock() {
                Ok(j) => j,
                Err(poisoned) => poisoned.into_inner(),
            };
            let _ = j.sync();
        }
    }

    /// Releases one active-job slot of `tenant` (terminal response
    /// emitted). Must be called exactly once per accepted job.
    fn tenant_release(inner: &mut Inner, tenant: &str) {
        if let Some(t) = inner.tenants.get_mut(tenant) {
            t.active = t.active.saturating_sub(1);
        }
    }

    /// Sheds one submit with a structured rejection.
    fn reject(&self, session: u64, spec: &JobSpec, reason: &str, error: String, retry_ms: u64) {
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        htforge_obs::counter("server.jobs_rejected").incr();
        htforge_obs::counter(&format!("server.jobs_rejected.{reason}")).incr();
        self.send_to(
            session,
            Response::Reject {
                tenant: spec.tenant.clone(),
                id: spec.id.clone(),
                reason: reason.to_owned(),
                error,
                retry_after_ms: retry_ms,
            },
        );
    }

    fn mirror_gauges(&self, inner: &Inner) {
        htforge_obs::gauge("server.queue_depth").set(inner.queue.len() as f64);
        htforge_obs::gauge("server.jobs_in_flight").set(inner.in_flight as f64);
        htforge_obs::gauge("server.cache_hit_rate").set(self.cache.hit_rate());
    }

    fn handle(&self, session: u64, req: Request, default_tenant: &str) {
        match req {
            Request::Submit(spec) => self.submit(session, *spec, default_tenant),
            Request::Cancel { tenant, id } => {
                let tenant = normalize(tenant, default_tenant);
                self.cancel(session, &tenant, &id);
            }
            Request::Pickup { tenant, id } => {
                let tenant = normalize(tenant, default_tenant);
                self.pickup(session, &tenant, &id);
            }
            Request::Status => self.send_to(session, Response::Status(self.status_body())),
            Request::Metrics => self.send_to(session, Response::Metrics(self.metrics_body())),
            Request::Shutdown { drop_queued } => {
                self.shutdown(session, drop_queued, true);
            }
        }
    }

    /// Admission check under the queue lock. `Ok(())` accepts;
    /// `Err((reason, message, retry_after_ms))` sheds the submit.
    fn admit(&self, inner: &mut Inner, spec: &JobSpec) -> Result<(), (&'static str, String, u64)> {
        let a = &self.admission;
        if a.max_queue_depth > 0 && inner.queue.len() >= a.max_queue_depth {
            return Err((
                "queue_full",
                format!("queue depth {} at limit", inner.queue.len()),
                a.retry_after_ms,
            ));
        }
        let now = Instant::now();
        let burst = a.burst();
        let state = inner
            .tenants
            .entry(spec.tenant.clone())
            .or_insert_with(|| TenantState {
                active: 0,
                tokens: burst,
                refreshed: now,
            });
        if a.tenant_max_active > 0 && state.active >= a.tenant_max_active {
            return Err((
                "queue_full",
                format!(
                    "tenant `{}` has {} active jobs (quota {})",
                    spec.tenant, state.active, a.tenant_max_active
                ),
                a.retry_after_ms,
            ));
        }
        if a.tenant_rate_per_sec > 0.0 {
            let elapsed = now.duration_since(state.refreshed).as_secs_f64();
            state.tokens = (state.tokens + elapsed * a.tenant_rate_per_sec).min(burst);
            state.refreshed = now;
            if state.tokens < 1.0 {
                let wait_ms = ((1.0 - state.tokens) / a.tenant_rate_per_sec * 1e3).ceil() as u64;
                return Err((
                    "rate_limit",
                    format!(
                        "tenant `{}` exceeded {} submits/sec",
                        spec.tenant, a.tenant_rate_per_sec
                    ),
                    wait_ms.max(1),
                ));
            }
            state.tokens -= 1.0;
        }
        Ok(())
    }

    fn submit(&self, session: u64, mut spec: JobSpec, default_tenant: &str) {
        spec.tenant = normalize(std::mem::take(&mut spec.tenant), default_tenant);
        // The `server.accept` faultpoint fires outside the queue lock
        // (a `panic` action is isolated here instead of poisoning the
        // scheduler); an injected fault sheds the submit with a
        // structured rejection, exactly like a real admission failure.
        let inject = isolate("server.accept", || faultpoint::fire("server.accept"));
        if inject != Ok(false) {
            self.reject(
                session,
                &spec,
                "accept_fault",
                "injected admission fault".to_owned(),
                self.admission.retry_after_ms,
            );
            return;
        }
        let key = spec.key();
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown.is_some() {
            self.send_to(
                session,
                Response::Error {
                    stage: "submit".to_owned(),
                    id: Some(spec.id),
                    error: "server is shutting down".to_owned(),
                },
            );
            return;
        }
        if inner.jobs.contains_key(&key) {
            self.send_to(
                session,
                Response::Error {
                    stage: "submit".to_owned(),
                    id: Some(spec.id.clone()),
                    error: format!(
                        "job `{}` is already active for tenant `{}`",
                        spec.id, spec.tenant
                    ),
                },
            );
            return;
        }
        if let Err((reason, message, retry_ms)) = self.admit(&mut inner, &spec) {
            drop(inner);
            self.reject(session, &spec, reason, message, retry_ms);
            return;
        }
        // Write-ahead: the submit record is journaled (and, under the
        // `always` policy, durable) before the ack leaves the server —
        // a post-ack crash can never lose the job. Appending under the
        // queue lock also orders it before the worker's `start` record.
        self.journal_append(&JournalEvent::Submit(Box::new(spec.clone())));
        self.enqueue(&mut inner, session, spec, true);
        self.mirror_gauges(&inner);
        drop(inner);
        self.cv.notify_one();
    }

    /// Inserts one accepted job into the queue and (optionally) acks.
    /// The ack goes out while holding the lock: a worker needs this
    /// lock to pop, so the ack is on the wire before the job's
    /// terminal response.
    fn enqueue(&self, inner: &mut Inner, session: u64, spec: JobSpec, ack: bool) {
        let token = CancelToken::new();
        let now = Instant::now();
        let trace = TraceContext::new_root();
        // Every accepted job — fresh or replayed — holds one active
        // slot of its tenant until its terminal response.
        let burst = self.admission.burst();
        inner
            .tenants
            .entry(spec.tenant.clone())
            .or_insert_with(|| TenantState {
                active: 0,
                tokens: burst,
                refreshed: now,
            })
            .active += 1;
        inner.jobs.insert(
            spec.key(),
            JobEntry {
                token,
                phase: Phase::Queued,
            },
        );
        inner.seq += 1;
        let seq = inner.seq;
        if ack {
            self.send_to(
                session,
                Response::Ack {
                    op: "submit".to_owned(),
                    tenant: spec.tenant.clone(),
                    id: Some(spec.id.clone()),
                    detail: vec![
                        (
                            "queue_depth".to_owned(),
                            Json::Num((inner.queue.len() + 1) as f64),
                        ),
                        ("trace".to_owned(), Json::Str(trace.hex())),
                    ],
                },
            );
        }
        inner.queue.push(QueuedJob {
            seq,
            deadline: spec.deadline_ms.map(|ms| now + Duration::from_millis(ms)),
            submitted: now,
            trace,
            session,
            spec,
        });
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        htforge_obs::counter("server.jobs_submitted").incr();
    }

    fn cancel(&self, session: u64, tenant: &str, id: &str) {
        let key = (tenant.to_owned(), id.to_owned());
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.jobs.get_mut(&key) else {
            self.send_to(
                session,
                Response::Error {
                    stage: "cancel".to_owned(),
                    id: Some(id.to_owned()),
                    error: format!("no active job `{id}` for tenant `{tenant}`"),
                },
            );
            return;
        };
        entry.token.cancel();
        let phase = entry.phase;
        match phase {
            Phase::Queued => {
                // The terminal response comes from here, now; the heap
                // entry becomes a tombstone the worker discards.
                entry.phase = Phase::Tombstoned;
                self.send_to(
                    session,
                    Response::Ack {
                        op: "cancel".to_owned(),
                        tenant: tenant.to_owned(),
                        id: Some(id.to_owned()),
                        detail: vec![("state".to_owned(), Json::Str("queued".to_owned()))],
                    },
                );
                // The entry does not track the kind; recover it (plus
                // the queue latency, trace and owning session) with
                // one scan of the small heap.
                let (kind, latency_ms, trace, job_session) = inner
                    .queue
                    .iter()
                    .find(|q| q.spec.tenant == tenant && q.spec.id == id)
                    .map_or((JobKind::Simulate, 0.0, String::new(), session), |q| {
                        (
                            q.spec.kind,
                            q.submitted.elapsed().as_secs_f64() * 1e3,
                            q.trace.hex(),
                            q.session,
                        )
                    });
                self.stats.count_terminal(JobStatus::Cancelled);
                Self::tenant_release(&mut inner, tenant);
                self.respond_terminal(
                    job_session,
                    JobResult {
                        tenant: tenant.to_owned(),
                        id: id.to_owned(),
                        kind,
                        status: JobStatus::Cancelled,
                        latency_ms,
                        result: None,
                        error: Some("cancelled while queued".to_owned()),
                        report: None,
                        trace,
                        timeline: None,
                    },
                );
            }
            Phase::Running => {
                // The worker observes the token and emits the terminal
                // `cancelled` response itself.
                self.send_to(
                    session,
                    Response::Ack {
                        op: "cancel".to_owned(),
                        tenant: tenant.to_owned(),
                        id: Some(id.to_owned()),
                        detail: vec![("state".to_owned(), Json::Str("running".to_owned()))],
                    },
                );
            }
            Phase::Tombstoned => {
                self.send_to(
                    session,
                    Response::Error {
                        stage: "cancel".to_owned(),
                        id: Some(id.to_owned()),
                        error: format!("job `{id}` is already cancelled"),
                    },
                );
            }
        }
    }

    fn status_body(&self) -> Json {
        let s = self.stats.snapshot();
        let c = self.cache.stats();
        let inner = self.inner.lock().unwrap();
        // Per-tenant load: running jobs from the worker states, queued
        // jobs from one scan of the (small) heap.
        let mut per_tenant: Vec<(String, u64, u64)> = Vec::new();
        let mut bump = |tenant: &str, running: u64, queued: u64| match per_tenant
            .iter_mut()
            .find(|(t, _, _)| t == tenant)
        {
            Some((_, r, q)) => {
                *r += running;
                *q += queued;
            }
            None => per_tenant.push((tenant.to_owned(), running, queued)),
        };
        let workers: Vec<Json> = inner
            .worker_states
            .iter()
            .map(|w| match w {
                WorkerState::Idle => Json::obj(vec![("state", Json::Str("idle".into()))]),
                WorkerState::Busy { tenant, id, kind } => {
                    bump(tenant, 1, 0);
                    Json::obj(vec![
                        ("state", Json::Str("busy".into())),
                        ("tenant", Json::Str(tenant.clone())),
                        ("id", Json::Str(id.clone())),
                        ("kind", Json::Str(kind.as_str().into())),
                    ])
                }
            })
            .collect();
        for q in &inner.queue {
            let key = q.spec.key();
            if matches!(inner.jobs.get(&key), Some(e) if e.phase == Phase::Queued) {
                bump(&q.spec.tenant, 0, 1);
            }
        }
        per_tenant.sort_by(|a, b| a.0.cmp(&b.0));
        let tenants = Json::Obj(
            per_tenant
                .into_iter()
                .map(|(tenant, running, queued)| {
                    (
                        tenant,
                        Json::obj(vec![
                            ("in_flight", Json::Num(running as f64)),
                            ("queued", Json::Num(queued as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("queue_depth", Json::Num(inner.queue.len() as f64)),
            ("jobs_in_flight", Json::Num(inner.in_flight as f64)),
            ("jobs_submitted", Json::Num(s.submitted as f64)),
            ("jobs_completed", Json::Num(s.completed as f64)),
            ("jobs_failed", Json::Num(s.failed as f64)),
            ("jobs_cancelled", Json::Num(s.cancelled as f64)),
            ("jobs_timeout", Json::Num(s.timeout as f64)),
            ("cache_entries", Json::Num(self.cache.entries() as f64)),
            ("cache_hits", Json::Num(c.hits as f64)),
            ("cache_misses", Json::Num(c.misses as f64)),
            ("cache_compiles", Json::Num(c.compiles as f64)),
            ("cache_hit_rate", Json::Num(self.cache.hit_rate())),
            ("jobs_rejected", Json::Num(s.rejected as f64)),
            ("workers", Json::Arr(workers)),
            ("per_tenant", tenants),
            ("shutting_down", Json::Bool(inner.shutdown.is_some())),
        ])
    }

    /// The `journal` object of the `metrics` body: recovery stats from
    /// startup replay plus live segment counters.
    fn journal_body(&self) -> Json {
        let r = &self.recovery;
        let mut fields = vec![("enabled", Json::Bool(r.enabled))];
        if r.enabled {
            fields.push(("replayed_records", Json::Num(r.replayed_records as f64)));
            fields.push(("terminal_records", Json::Num(r.terminal_records as f64)));
            fields.push(("recovered_jobs", Json::Num(r.recovered_jobs as f64)));
            fields.push(("truncated_bytes", Json::Num(r.truncated_bytes as f64)));
            fields.push(("recovery_ms", Json::Num(r.recovery_ms)));
            fields.push(("replay_failed", Json::Bool(r.replay_failed)));
            if let Some(journal) = &self.journal {
                if let Ok(j) = journal.lock() {
                    let s = j.stats();
                    fields.push(("appends", Json::Num(s.appends as f64)));
                    fields.push(("fsyncs", Json::Num(s.fsyncs as f64)));
                    fields.push(("rotations", Json::Num(s.rotations as f64)));
                    fields.push(("pending", Json::Num(j.pending() as f64)));
                    fields.push(("size_bytes", Json::Num(j.size_bytes() as f64)));
                    fields.push(("fsync", Json::Str(j.fsync_policy().label())));
                }
            }
        }
        Json::obj(fields)
    }

    /// The `metrics` introspection body: a full
    /// `htforge.metrics_snapshot/v1` of the process-wide recorder
    /// (per-class latency histograms included), the staged-budget
    /// profile store, and event-ring statistics when a ring is
    /// installed.
    fn metrics_body(&self) -> Json {
        let snapshot = htforge_obs::global().snapshot();
        let mut fields = vec![
            ("snapshot", metrics_snapshot_json(&snapshot)),
            ("budget_profiles", PhaseProfileStore::global().to_json()),
            ("journal", self.journal_body()),
        ];
        if let Some(ring) = htforge_obs::global().ring() {
            fields.push((
                "ring",
                Json::obj(vec![
                    ("capacity", Json::Num(ring.capacity() as f64)),
                    ("events", Json::Num(ring.head() as f64)),
                    ("dropped", Json::Num(ring.dropped() as f64)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Initiates shutdown. Idempotent; only the first call acks.
    fn shutdown(&self, session: u64, drop_queued: bool, ack: bool) {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown.is_some() {
            return;
        }
        inner.shutdown = Some(drop_queued);
        if ack {
            self.send_to(
                session,
                Response::Ack {
                    op: "shutdown".to_owned(),
                    tenant: String::new(),
                    id: None,
                    detail: vec![(
                        "mode".to_owned(),
                        Json::Str(if drop_queued { "drop" } else { "drain" }.to_owned()),
                    )],
                },
            );
        }
        if drop_queued {
            while let Some(q) = inner.queue.pop() {
                let key = q.spec.key();
                let was_queued =
                    matches!(inner.jobs.get(&key), Some(e) if e.phase == Phase::Queued);
                inner.jobs.remove(&key);
                if was_queued {
                    self.stats.count_terminal(JobStatus::Cancelled);
                    Self::tenant_release(&mut inner, &q.spec.tenant);
                    self.respond_terminal(
                        q.session,
                        JobResult {
                            tenant: q.spec.tenant,
                            id: q.spec.id,
                            kind: q.spec.kind,
                            status: JobStatus::Cancelled,
                            latency_ms: q.submitted.elapsed().as_secs_f64() * 1e3,
                            result: None,
                            error: Some("dropped at shutdown".to_owned()),
                            report: None,
                            trace: q.trace.hex(),
                            timeline: None,
                        },
                    );
                }
            }
        }
        self.mirror_gauges(&inner);
        drop(inner);
        self.cv.notify_all();
    }

    /// Emits the terminal response for one job through the
    /// `server.respond` faultpoint. On an injected fault (err action or
    /// even a panic inside `fire`), a degraded response — same identity
    /// and status, payload and report stripped — goes out through a
    /// direct path that cannot fault again, preserving the
    /// one-terminal-response-per-job invariant.
    fn respond_terminal(&self, session: u64, result: JobResult) {
        // Write-ahead: the terminal record hits the journal before the
        // response line leaves the server, so a crash between the two
        // replays the job (at-least-once) instead of losing it; the
        // client-visible invariant stays exactly one terminal line.
        self.journal_append(&JournalEvent::Terminal {
            tenant: result.tenant.clone(),
            id: result.id.clone(),
            status: result.status,
        });
        let inject = isolate("server.respond", || faultpoint::fire("server.respond"));
        match inject {
            Ok(false) => self.send_terminal(session, result),
            Ok(true) | Err(_) => {
                self.stats
                    .degraded_responses
                    .fetch_add(1, Ordering::Relaxed);
                htforge_obs::counter("server.responses_degraded").incr();
                let mut degraded = result;
                degraded.result = None;
                degraded.report = None;
                degraded.error = Some(match degraded.error {
                    Some(e) => format!("{e}; response degraded: injected respond fault"),
                    None => "response degraded: injected respond fault".to_owned(),
                });
                self.send_terminal(session, degraded);
            }
        }
    }

    /// Delivers one terminal result to its session. When the session
    /// is gone (client disconnected mid-job), the result is parked for
    /// retrieval via the `pickup` op and a copy still goes to the
    /// session-0 drain so the line stays observable.
    fn send_terminal(&self, session: u64, result: JobResult) {
        let mut result = Some(result);
        {
            let sessions = self.sessions.lock().unwrap();
            if let Some(tx) = sessions.get(&session) {
                match tx.send(Response::Result(Box::new(result.take().unwrap()))) {
                    Ok(()) => return,
                    Err(e) => {
                        if let Response::Result(r) = e.0 {
                            result = Some(*r);
                        }
                    }
                }
            }
        }
        let Some(result) = result else { return };
        if session == 0 {
            // The primary channel itself is gone: nothing to reconnect.
            htforge_obs::counter("server.responses_orphaned").incr();
            return;
        }
        {
            let mut parked = self.parked.lock().unwrap();
            if parked.len() >= PARKED_TERMINALS_CAP {
                parked.pop_front();
                htforge_obs::counter("server.terminals_park_evicted").incr();
            }
            parked.push_back(result.clone());
        }
        htforge_obs::counter("server.terminals_parked").incr();
        let sessions = self.sessions.lock().unwrap();
        if let Some(tx) = sessions.get(&0) {
            let _ = tx.send(Response::Result(Box::new(result)));
        }
    }

    /// The `pickup` op: hands a parked terminal of `(tenant, id)` to
    /// the requesting (reconnected) session, or a structured error if
    /// nothing is parked under that key.
    fn pickup(&self, session: u64, tenant: &str, id: &str) {
        let found = {
            let mut parked = self.parked.lock().unwrap();
            parked
                .iter()
                .position(|r| r.tenant == tenant && r.id == id)
                .and_then(|i| parked.remove(i))
        };
        match found {
            Some(result) => {
                htforge_obs::counter("server.terminals_picked_up").incr();
                self.send_to(session, Response::Result(Box::new(result)));
            }
            None => self.send_to(
                session,
                Response::Error {
                    stage: "pickup".to_owned(),
                    id: Some(id.to_owned()),
                    error: format!("no parked terminal for job `{id}` of tenant `{tenant}`"),
                },
            ),
        }
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        loop {
            let popped = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(q) = inner.queue.pop() {
                        let key = q.spec.key();
                        match inner.jobs.get_mut(&key) {
                            Some(entry) if entry.phase == Phase::Queued => {
                                entry.phase = Phase::Running;
                                let token = entry.token.clone();
                                inner.in_flight += 1;
                                inner.worker_states[index] = WorkerState::Busy {
                                    tenant: q.spec.tenant.clone(),
                                    id: q.spec.id.clone(),
                                    kind: q.spec.kind,
                                };
                                self.mirror_gauges(&inner);
                                self.journal_append(&JournalEvent::Start {
                                    tenant: q.spec.tenant.clone(),
                                    id: q.spec.id.clone(),
                                });
                                break Some((q, token));
                            }
                            _ => {
                                // Tombstoned (terminal response already
                                // sent) or untracked: drop it.
                                inner.jobs.remove(&key);
                                self.mirror_gauges(&inner);
                                continue;
                            }
                        }
                    }
                    if inner.shutdown.is_some() {
                        break None;
                    }
                    inner = self.cv.wait(inner).unwrap();
                }
            };
            let Some((q, token)) = popped else { return };
            self.run_job(q, token, index);
        }
    }

    /// The progress emitter for one popped job: live when the config
    /// streams progress, inert otherwise. Staged-budget weights come
    /// from the job's circuit-class profile so phase ETAs match the
    /// split the framework will actually use.
    fn emitter_for(&self, q: &QueuedJob) -> ProgressEmitter {
        if !self.progress_enabled {
            return ProgressEmitter::disabled();
        }
        let weights = match q.spec.kind {
            JobKind::Insert | JobKind::Detect => {
                let class = q.spec.circuit.label();
                STAGED_PHASES
                    .iter()
                    .map(|p| (*p).to_owned())
                    .zip(PhaseProfileStore::global().stage_weights(&class))
                    .collect()
            }
            JobKind::Simulate | JobKind::Grade => Vec::new(),
        };
        let Some(tx) = self.session_sender(q.session) else {
            return ProgressEmitter::disabled();
        };
        ProgressEmitter::new(
            tx,
            q.spec.tenant.clone(),
            q.spec.id.clone(),
            q.spec.kind,
            q.trace.hex(),
            weights,
        )
    }

    fn run_job(&self, q: QueuedJob, token: CancelToken, index: usize) {
        let started = Instant::now();
        let budget = RunBudget::new(q.deadline, token);
        let spec = &q.spec;
        let trace = q.trace.hex();
        let progress = Arc::new(self.emitter_for(&q));
        // Everything this worker records — framework spans included —
        // correlates to the job's root trace; the span hook turns the
        // pipeline phase spans into streamed progress frames even when
        // the recorder itself is disabled.
        let _trace_guard = htforge_obs::global().adopt_trace(q.trace);
        let _hook_guard = progress
            .is_enabled()
            .then(|| install_span_hook(progress.span_hook()));
        // `isolate` turns a panicking job — including an armed
        // `server.dispatch:panic` — into a `failed` response; the
        // worker and its siblings keep serving.
        let outcome = isolate("server.dispatch", || {
            if faultpoint::fire("server.dispatch") {
                return ExecOutcome::dispatch_failure("injected dispatch fault".to_owned());
            }
            match self.cache.get_or_compile(&spec.circuit) {
                Ok((circuit, hit)) => {
                    htforge_obs::counter(if hit {
                        "server.cache_hits"
                    } else {
                        "server.cache_misses"
                    })
                    .incr();
                    execute(spec, &circuit, &self.cache, &budget, &progress)
                }
                Err(e) => ExecOutcome::dispatch_failure(format!("compile: {e}")),
            }
        })
        .unwrap_or_else(ExecOutcome::dispatch_failure);

        let latency_ms = q.submitted.elapsed().as_secs_f64() * 1e3;
        // Per-class latency distributions: the `metrics` op reports
        // percentiles per job kind from these.
        htforge_obs::histogram(&format!("server.latency_ms.{}", spec.kind.as_str()))
            .record(latency_ms.max(0.0) as u64);
        let timeline = (!outcome.phases.is_empty())
            .then(|| JobTimeline::from_durations(&trace, &outcome.phases).to_json());
        let report = job_report(spec, &outcome, started.elapsed(), latency_ms, &trace);
        self.stats.count_terminal(outcome.status);
        self.respond_terminal(
            q.session,
            JobResult {
                tenant: spec.tenant.clone(),
                id: spec.id.clone(),
                kind: spec.kind,
                status: outcome.status,
                latency_ms,
                result: outcome.result,
                error: outcome.error,
                report: Some(report.to_json()),
                trace,
                timeline,
            },
        );

        let mut inner = self.inner.lock().unwrap();
        inner.jobs.remove(&q.spec.key());
        inner.in_flight -= 1;
        inner.worker_states[index] = WorkerState::Idle;
        Self::tenant_release(&mut inner, &q.spec.tenant);
        self.mirror_gauges(&inner);
    }
}

fn normalize(tenant: String, default_tenant: &str) -> String {
    if tenant.is_empty() {
        default_tenant.to_owned()
    } else {
        tenant
    }
}

/// Builds the per-job `htforge.run_report/v1` artifact. Reports are
/// assembled from the job's own outcome (not the global recorder, whose
/// spans would interleave concurrent jobs); the observed phases become
/// child spans of the root `server.job` span, so a campaign is
/// reconstructable per-phase from the JSONL stream alone.
fn job_report(
    spec: &JobSpec,
    outcome: &ExecOutcome,
    ran_for: Duration,
    latency_ms: f64,
    trace: &str,
) -> RunReport {
    let mut counters = outcome.counters.clone();
    counters.sort();
    let mut spans = vec![SpanEntry {
        id: 0,
        parent: None,
        name: "server.job".to_owned(),
        start_us: 0.0,
        dur_us: ran_for.as_secs_f64() * 1e6,
        attrs: vec![("kind".to_owned(), spec.kind.as_str().to_owned())],
    }];
    let mut start_us = 0.0;
    for (i, (phase, dur_ms)) in outcome.phases.iter().enumerate() {
        let dur_us = dur_ms * 1e3;
        spans.push(SpanEntry {
            id: i as u64 + 1,
            parent: Some(0),
            name: phase.clone(),
            start_us,
            dur_us,
            attrs: Vec::new(),
        });
        start_us += dur_us;
    }
    RunReport {
        name: format!("server_{}_{}", spec.kind.as_str(), spec.circuit.label()),
        meta: vec![
            ("tenant".to_owned(), Json::Str(spec.tenant.clone())),
            ("job_id".to_owned(), Json::Str(spec.id.clone())),
            ("kind".to_owned(), Json::Str(spec.kind.as_str().to_owned())),
            ("circuit".to_owned(), Json::Str(spec.circuit.label())),
            (
                "status".to_owned(),
                Json::Str(outcome.status.as_str().to_owned()),
            ),
            ("latency_ms".to_owned(), Json::Num(latency_ms)),
            ("trace".to_owned(), Json::Str(trace.to_owned())),
        ],
        spans,
        counters,
        gauges: Vec::new(),
        histograms: Vec::new(),
        degradations: outcome.degradations.clone(),
    }
}

/// What [`Server::handle_line`] tells the session loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionControl {
    /// Keep reading requests.
    Continue,
    /// A shutdown request was handled; stop reading and join.
    Shutdown,
}

/// A running campaign server: worker pool + response stream(s).
pub struct Server {
    core: Arc<Core>,
    config: ServerConfig,
    workers: Mutex<Option<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts the worker pool. All responses — acks, errors, terminal
    /// results, status, the final shutdown line — arrive on the
    /// returned channel (session 0) in emission order. Additional
    /// concurrent sessions attach via [`Server::open_session`].
    #[must_use]
    pub fn start(config: ServerConfig) -> (Server, Receiver<Response>) {
        Self::start_with_cache(config, Arc::new(ProgramCache::new()))
    }

    /// Opens (and replays) the configured journal through the
    /// `server.journal_replay` faultpoint. A replay failure — injected
    /// panic or a segment nothing can decode — falls back to a fresh
    /// segment (availability over a poisoned journal), counted and
    /// flagged in the returned [`RecoveryInfo`].
    fn open_journal(config: &ServerConfig) -> (Option<Mutex<Journal>>, RecoveryInfo, Vec<JobSpec>) {
        let Some(jc) = &config.journal else {
            return (None, RecoveryInfo::default(), Vec::new());
        };
        let mut info = RecoveryInfo {
            enabled: true,
            ..RecoveryInfo::default()
        };
        let replayed = isolate("server.journal_replay", || {
            if faultpoint::fire("server.journal_replay") {
                return Err(std::io::Error::other("injected journal replay fault"));
            }
            Journal::open(jc.clone())
        });
        match replayed {
            Ok(Ok((journal, recovery))) => {
                info.replayed_records = recovery.replayed_records;
                info.terminal_records = recovery.terminal_records;
                info.recovered_jobs = recovery.pending.len() as u64;
                info.truncated_bytes = recovery.truncated_bytes;
                info.recovery_ms = recovery.recovery_ms;
                htforge_obs::counter("server.journal_replayed_records")
                    .add(recovery.replayed_records);
                htforge_obs::counter("server.journal_recovered_jobs")
                    .add(recovery.pending.len() as u64);
                if recovery.truncated_bytes > 0 {
                    htforge_obs::counter("server.journal_truncated_bytes")
                        .add(recovery.truncated_bytes);
                }
                htforge_obs::gauge("server.journal_recovery_ms").set(recovery.recovery_ms);
                (Some(Mutex::new(journal)), info, recovery.pending)
            }
            Ok(Err(_)) | Err(_) => {
                htforge_obs::counter("server.journal_replay_errors").incr();
                info.replay_failed = true;
                let journal = Journal::open_fresh(jc.clone()).ok().map(Mutex::new);
                (journal, info, Vec::new())
            }
        }
    }

    /// Starts with a shared compiled-circuit cache (socket mode shares
    /// one cache across concurrent sessions). When the config names a
    /// journal, the segment is replayed first and every
    /// accepted-but-not-terminal job is re-enqueued (routed to session
    /// 0) before the workers start.
    #[must_use]
    pub fn start_with_cache(
        config: ServerConfig,
        cache: Arc<ProgramCache>,
    ) -> (Server, Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        let worker_count = config.resolved_workers();
        let (journal, recovery, pending) = Self::open_journal(&config);
        let core = Arc::new(Core {
            inner: Mutex::new(Inner {
                queue: BinaryHeap::new(),
                jobs: HashMap::new(),
                shutdown: None,
                seq: 0,
                in_flight: 0,
                worker_states: vec![WorkerState::Idle; worker_count],
                tenants: HashMap::new(),
            }),
            cv: Condvar::new(),
            cache,
            stats: Stats::default(),
            sessions: Mutex::new(HashMap::from([(0, tx)])),
            next_session: AtomicU64::new(1),
            progress_enabled: config.progress,
            admission: config.admission.clone(),
            journal,
            recovery,
            parked: Mutex::new(VecDeque::new()),
        });
        // Re-enqueue recovered jobs before any worker runs: redelivery
        // is at-least-once, and the jobs map dedupes by (tenant, id)
        // so each gets exactly one terminal response. No ack — the
        // original submit was acked in a previous life.
        if !pending.is_empty() {
            let mut inner = core.inner.lock().unwrap();
            for spec in pending {
                if !inner.jobs.contains_key(&spec.key()) {
                    core.enqueue(&mut inner, 0, spec, false);
                }
            }
            core.mirror_gauges(&inner);
        }
        let workers = (0..worker_count)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("htforge-server-{i}"))
                    .spawn(move || core.worker_loop(i))
                    .expect("spawn worker")
            })
            .collect();
        (
            Server {
                core,
                config,
                workers: Mutex::new(Some(workers)),
            },
            rx,
        )
    }

    /// Opens a new response session (one per socket connection). The
    /// returned receiver carries every response to requests handled
    /// via [`Server::handle_line_for`] with this id, plus progress and
    /// terminal lines of jobs it submitted.
    #[must_use]
    pub fn open_session(&self) -> (u64, Receiver<Response>) {
        let id = self.core.next_session.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.core.sessions.lock().unwrap().insert(id, tx);
        (id, rx)
    }

    /// Closes a session. In-flight responses it would have received
    /// fall back to session 0; terminal results are additionally
    /// parked for retrieval via the `pickup` op (reconnect flow).
    pub fn close_session(&self, id: u64) {
        if id != 0 {
            self.core.sessions.lock().unwrap().remove(&id);
        }
    }

    /// Handles one parsed request on behalf of session 0.
    pub fn handle(&self, req: Request) {
        self.handle_for(0, req);
    }

    /// Handles one parsed request on behalf of `session`.
    pub fn handle_for(&self, session: u64, req: Request) {
        self.core.handle(session, req, &self.config.default_tenant);
    }

    /// Parses and handles one JSONL line for session 0; malformed
    /// input becomes a structured error response, never a panic.
    pub fn handle_line(&self, line: &str) -> SessionControl {
        self.handle_line_for(0, line)
    }

    /// Parses and handles one JSONL line for `session`.
    pub fn handle_line_for(&self, session: u64, line: &str) -> SessionControl {
        match parse_request(line) {
            Ok(req) => {
                let control = if matches!(req, Request::Shutdown { .. }) {
                    SessionControl::Shutdown
                } else {
                    SessionControl::Continue
                };
                self.handle_for(session, req);
                control
            }
            Err(e) => {
                self.core.send_to(session, Response::from_request_error(&e));
                SessionControl::Continue
            }
        }
    }

    /// Requests shutdown without an ack line (the session's EOF path).
    /// Idempotent after an explicit shutdown request.
    pub fn request_shutdown(&self, drop_queued: bool) {
        self.core.shutdown(0, drop_queued, false);
    }

    /// Whether shutdown was requested (the socket accept loop polls
    /// this to stop taking new connections).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.core.inner.lock().unwrap().shutdown.is_some()
    }

    /// Local lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.core.stats.snapshot()
    }

    /// What journal replay found at startup.
    #[must_use]
    pub fn recovery(&self) -> RecoveryInfo {
        self.core.recovery
    }

    /// The compiled-circuit cache.
    #[must_use]
    pub fn cache(&self) -> &ProgramCache {
        &self.core.cache
    }

    /// Waits for the queue to drain and the workers to exit, flushes
    /// the journal, and emits the final [`Response::Shutdown`] line to
    /// every open session. Idempotent; usable through a shared
    /// reference (the socket path drains before the last `Arc` drops).
    ///
    /// Call [`Server::request_shutdown`] (or handle a shutdown
    /// request) first; draining a server that was never asked to stop
    /// blocks forever by design.
    pub fn drain(&self) -> StatsSnapshot {
        let workers = self.workers.lock().unwrap().take();
        if let Some(workers) = workers {
            for w in workers {
                let _ = w.join();
            }
            self.core.journal_sync();
            let stats = self.core.stats.snapshot();
            let drop_queued = self.core.inner.lock().unwrap().shutdown.unwrap_or(false);
            self.core.broadcast(&Response::Shutdown {
                mode: if drop_queued { "drop" } else { "drain" }.to_owned(),
                jobs_completed: stats.finished(),
            });
        }
        self.core.stats.snapshot()
    }

    /// [`Server::drain`], then closes every response channel (the
    /// receivers see the stream end after the shutdown line).
    pub fn join(self) -> StatsSnapshot {
        self.drain()
        // `self.core` drops here; the session senders go with it and
        // each receiver sees its channel close after the shutdown line.
    }
}
