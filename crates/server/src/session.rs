//! Session plumbing: wires a [`Server`] to byte streams.
//!
//! One session = one request stream + one response stream. A dedicated
//! writer thread owns the output and drains the session's response
//! channel, so workers never block on a slow client and response lines
//! are never interleaved. In stdio mode EOF on the input is a graceful
//! `drain` shutdown: accepted jobs finish, their results flush, and
//! the final `shutdown` line closes the stream.
//!
//! Socket mode ([`serve_unix_socket`]) is concurrent: every accepted
//! connection gets its own reader + writer thread pair and a private
//! response session, all feeding **one** shared [`Server`] (one
//! scheduler, one journal, one cache). A disconnect closes only that
//! connection; a client `shutdown` request — or an external stop flag,
//! the binary's SIGTERM path — drains the whole daemon, flushing
//! terminal responses to still-connected clients before the socket
//! closes.

use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use crate::cache::ProgramCache;
use crate::core::{Server, ServerConfig, SessionControl, StatsSnapshot};
use crate::protocol::Response;

/// What one session did, for logs and tests.
#[derive(Debug, Clone, Copy)]
pub struct SessionSummary {
    /// Final server statistics (every accepted job is terminal here).
    pub stats: StatsSnapshot,
    /// Whether the client requested shutdown explicitly (vs plain EOF).
    pub client_shutdown: bool,
}

/// Serves one JSONL session over arbitrary streams. Returns when the
/// input reaches EOF or the client sends a `shutdown` request, after
/// every accepted job's terminal response (and the final `shutdown`
/// line) has been written and flushed.
///
/// # Errors
///
/// Propagates I/O errors from either stream; jobs already accepted are
/// still drained and counted before the error is returned.
pub fn serve<R, W>(
    input: R,
    output: W,
    config: ServerConfig,
    cache: Arc<ProgramCache>,
) -> io::Result<SessionSummary>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let (server, rx) = Server::start_with_cache(config, cache);
    let writer = thread::spawn(move || -> io::Result<()> {
        let mut out = output;
        for resp in rx {
            writeln!(out, "{}", resp.to_line())?;
            out.flush()?;
        }
        Ok(())
    });

    let mut client_shutdown = false;
    let mut read_error = None;
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                read_error = Some(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if server.handle_line(&line) == SessionControl::Shutdown {
            client_shutdown = true;
            break;
        }
    }

    server.request_shutdown(false);
    let stats = server.join();
    let write_result = writer
        .join()
        .map_err(|_| io::Error::other("response writer panicked"))?;
    if let Some(e) = read_error {
        return Err(e);
    }
    write_result?;
    Ok(SessionSummary {
        stats,
        client_shutdown,
    })
}

/// [`serve`] with an external stop flag: when `stop` flips true (the
/// binary's SIGTERM/SIGINT handler), the session stops reading, drains
/// accepted jobs, flushes their terminal responses and the final
/// `shutdown` line, and returns. The input is read from a helper
/// thread so a quiet stream cannot block the stop check.
///
/// # Errors
///
/// Propagates I/O errors from either stream; jobs already accepted are
/// still drained and counted before the error is returned.
pub fn serve_cancellable<R, W>(
    input: R,
    output: W,
    config: ServerConfig,
    cache: Arc<ProgramCache>,
    stop: Arc<AtomicBool>,
) -> io::Result<SessionSummary>
where
    R: BufRead + Send + 'static,
    W: Write + Send + 'static,
{
    let (server, rx) = Server::start_with_cache(config, cache);
    let writer = thread::spawn(move || -> io::Result<()> {
        let mut out = output;
        for resp in rx {
            let last = matches!(resp, Response::Shutdown { .. });
            writeln!(out, "{}", resp.to_line())?;
            out.flush()?;
            if last {
                break;
            }
        }
        Ok(())
    });

    // Reader thread: lines arrive over a channel so the main loop can
    // poll `stop` between reads instead of blocking on a quiet input.
    let (line_tx, line_rx) = mpsc::channel::<io::Result<String>>();
    let _reader = thread::spawn(move || {
        for line in input.lines() {
            let failed = line.is_err();
            if line_tx.send(line).is_err() || failed {
                break;
            }
        }
    });

    let mut client_shutdown = false;
    let mut read_error = None;
    while !stop.load(Ordering::Relaxed) {
        match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Ok(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if server.handle_line(&line) == SessionControl::Shutdown {
                    client_shutdown = true;
                    break;
                }
            }
            Ok(Err(e)) => {
                read_error = Some(e);
                break;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    server.request_shutdown(false);
    let stats = server.join();
    let write_result = writer
        .join()
        .map_err(|_| io::Error::other("response writer panicked"))?;
    if let Some(e) = read_error {
        return Err(e);
    }
    write_result?;
    Ok(SessionSummary {
        stats,
        client_shutdown,
    })
    // The reader thread is detached: it exits on input EOF or when the
    // closed channel rejects its next line.
}

/// Serves concurrent sessions over a Unix socket, all feeding one
/// shared [`Server`]. A client `shutdown` request drains the daemon;
/// a plain disconnect (EOF) closes only that connection.
///
/// # Errors
///
/// Propagates socket errors (bind/accept); per-connection I/O errors
/// end that connection and are logged, never the daemon.
pub fn serve_unix_socket(path: &Path, config: &ServerConfig) -> io::Result<()> {
    serve_unix_socket_with(
        path,
        config,
        Arc::new(ProgramCache::new()),
        Arc::new(AtomicBool::new(false)),
    )
    .map(|_| ())
}

/// [`serve_unix_socket`] with a shared cache and an external stop flag
/// (the binary's SIGTERM/SIGINT path). When `stop` flips true the
/// accept loop closes, accepted jobs drain, terminal responses flush
/// to still-connected clients, and the function returns the final
/// statistics.
///
/// # Errors
///
/// Propagates socket bind errors; everything after bind degrades
/// per-connection instead of failing the daemon.
pub fn serve_unix_socket_with(
    path: &Path,
    config: &ServerConfig,
    cache: Arc<ProgramCache>,
    stop: Arc<AtomicBool>,
) -> io::Result<StatsSnapshot> {
    // A stale socket file from a previous run blocks bind; remove it.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let (server, rx0) = Server::start_with_cache(config.clone(), cache);
    let server = Arc::new(server);

    // Session-0 drain: responses with no live connection — recovered
    // jobs finishing after a crash, terminals for disconnected clients
    // — are logged so the channel never backs up and nothing vanishes
    // silently.
    let orphan_drain = thread::spawn(move || {
        for resp in rx0 {
            let last = matches!(resp, Response::Shutdown { .. });
            eprintln!("[htforge-server] unrouted: {}", resp.to_line());
            if last {
                break;
            }
        }
    });

    let client_shutdown = Arc::new(AtomicBool::new(false));
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed)
            || client_shutdown.load(Ordering::Relaxed)
            || server.is_shutting_down()
        {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                let flag = Arc::clone(&client_shutdown);
                connections.push(thread::spawn(move || {
                    if let Err(e) = handle_connection(&server, stream, &flag) {
                        eprintln!("[htforge-server] connection error: {e}");
                    }
                }));
                // Reap finished connection threads so a long-lived
                // daemon doesn't accumulate handles.
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("[htforge-server] accept error: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Graceful drain: stop accepting, finish accepted jobs, flush
    // terminals to clients still connected, then close everything.
    server.request_shutdown(false);
    let stats = server.drain();
    for conn in connections {
        let _ = conn.join();
    }
    let _ = orphan_drain.join();
    let _ = std::fs::remove_file(path);
    Ok(stats)
}

/// One socket connection: a private response session plus a reader
/// loop that polls the server's shutdown state between read timeouts,
/// so a quiet client never pins the daemon open during a drain.
fn handle_connection(
    server: &Server,
    stream: std::os::unix::net::UnixStream,
    client_shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let (session, rx) = server.open_session();
    let out = stream.try_clone()?;
    let writer = thread::spawn(move || -> io::Result<()> {
        let mut out = out;
        for resp in rx {
            let last = matches!(resp, Response::Shutdown { .. });
            writeln!(out, "{}", resp.to_line())?;
            out.flush()?;
            if last {
                break;
            }
        }
        Ok(())
    });

    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    // `read_until` keeps partial bytes in `line` across timeouts, so
    // a slow client's half-written request survives the poll cycle.
    let result: io::Result<bool> = loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break Ok(false), // EOF: client disconnected.
            Ok(_) => {
                let text = String::from_utf8_lossy(&line);
                let text = text.trim();
                let control = if text.is_empty() {
                    SessionControl::Continue
                } else {
                    server.handle_line_for(session, text)
                };
                line.clear();
                if control == SessionControl::Shutdown {
                    break Ok(true);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if server.is_shutting_down() || client_shutdown.load(Ordering::Relaxed) {
                    break Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => break Err(e),
        }
    };

    let requested_shutdown = matches!(result, Ok(true));
    if requested_shutdown {
        client_shutdown.store(true, Ordering::Relaxed);
    }
    if requested_shutdown || server.is_shutting_down() || client_shutdown.load(Ordering::Relaxed) {
        // Keep the session open through the drain: terminal lines for
        // this client's in-flight jobs flush, and the writer exits on
        // the broadcast `shutdown` line.
        let _ = writer.join();
        server.close_session(session);
    } else {
        // Plain disconnect: close the session first so the writer's
        // channel ends, then reap it. In-flight terminals reroute to
        // the session-0 drain.
        server.close_session(session);
        let _ = writer.join();
    }
    result.map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::REQUEST_SCHEMA;
    use htforge_obs::parse_json;

    fn run_lines(lines: &str) -> (Vec<htforge_obs::Json>, SessionSummary) {
        let out: Vec<u8> = Vec::new();
        let sink = std::sync::Arc::new(std::sync::Mutex::new(out));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let summary = serve(
            lines.as_bytes(),
            Shared(std::sync::Arc::clone(&sink)),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            Arc::new(ProgramCache::new()),
        )
        .unwrap();
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let docs = text.lines().map(|l| parse_json(l).unwrap()).collect();
        (docs, summary)
    }

    #[test]
    fn eof_drains_and_emits_final_shutdown_line() {
        let submit = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"a","kind":"simulate","circuit":"c17","params":{{"vectors":256}}}}"#
        );
        let (docs, summary) = run_lines(&submit);
        assert!(!summary.client_shutdown);
        assert_eq!(summary.stats.completed, 1);
        let types: Vec<_> = docs
            .iter()
            .map(|d| d.get("type").unwrap().as_str().unwrap().to_owned())
            .collect();
        assert_eq!(types.first().map(String::as_str), Some("ack"));
        assert_eq!(types.last().map(String::as_str), Some("shutdown"));
        assert!(types.iter().any(|t| t == "result"));
    }

    #[test]
    fn garbage_lines_become_error_responses_not_panics() {
        let (docs, summary) = run_lines("}{ nope\n\n[1,2,3]\n");
        assert!(!summary.client_shutdown);
        assert_eq!(summary.stats.submitted, 0);
        // Two non-empty garbage lines → two error lines + shutdown.
        assert_eq!(docs.len(), 3);
        assert!(docs[..2]
            .iter()
            .all(|d| d.get("type").unwrap().as_str() == Some("error")));
    }

    #[test]
    fn progress_frames_stream_before_the_terminal_result() {
        let submit = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"p","kind":"simulate","circuit":"c17","params":{{"vectors":4096,"repeat":4}}}}"#
        );
        let metrics = format!(r#"{{"schema":"{REQUEST_SCHEMA}","op":"metrics"}}"#);
        let (docs, summary) = run_lines(&format!("{submit}\n{metrics}\n"));
        assert_eq!(summary.stats.completed, 1);
        let type_of = |d: &htforge_obs::Json| d.get("type").unwrap().as_str().unwrap().to_owned();
        let first_progress = docs
            .iter()
            .position(|d| type_of(d) == "progress")
            .expect("at least one streamed progress frame");
        let result = docs
            .iter()
            .position(|d| type_of(d) == "result")
            .expect("a terminal result");
        assert!(
            first_progress < result,
            "progress (line {first_progress}) must precede the terminal result (line {result})"
        );
        // Frames validate and share the terminal response's trace id.
        let trace = docs[result].get("trace").unwrap().as_str().unwrap();
        assert_eq!(trace.len(), 16);
        for doc in docs.iter().filter(|d| type_of(d) == "progress") {
            htforge_obs::validate_job_progress(doc.get("progress").unwrap()).unwrap();
            assert_eq!(doc.get("trace").unwrap().as_str(), Some(trace));
        }
        // The terminal line carries a schema-valid per-phase timeline
        // bound to the same trace.
        let timeline = docs[result].get("timeline").expect("timeline");
        htforge_obs::validate_job_timeline(timeline).unwrap();
        assert_eq!(timeline.get("trace").unwrap().as_str(), Some(trace));
        // The report's meta carries the trace too.
        let report = docs[result].get("report").unwrap();
        assert_eq!(
            report.get("meta").unwrap().get("trace").unwrap().as_str(),
            Some(trace)
        );
        // The metrics introspection line embeds a schema-valid
        // snapshot plus the budget profile store.
        let metrics_doc = docs
            .iter()
            .find(|d| type_of(d) == "metrics")
            .expect("a metrics response");
        htforge_obs::validate_metrics_snapshot(metrics_doc.get("snapshot").unwrap()).unwrap();
        assert!(metrics_doc.get("budget_profiles").is_some());
    }

    #[test]
    fn disabling_progress_suppresses_frames_but_keeps_timelines() {
        let submit = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"q","kind":"simulate","circuit":"c17","params":{{"vectors":1024}}}}"#
        );
        let out: Vec<u8> = Vec::new();
        let sink = std::sync::Arc::new(std::sync::Mutex::new(out));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        serve(
            submit.as_bytes(),
            Shared(std::sync::Arc::clone(&sink)),
            ServerConfig {
                workers: 1,
                progress: false,
                ..ServerConfig::default()
            },
            Arc::new(ProgramCache::new()),
        )
        .unwrap();
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let docs: Vec<htforge_obs::Json> = text.lines().map(|l| parse_json(l).unwrap()).collect();
        assert!(docs
            .iter()
            .all(|d| d.get("type").unwrap().as_str() != Some("progress")));
        let result = docs
            .iter()
            .find(|d| d.get("type").unwrap().as_str() == Some("result"))
            .unwrap();
        // Tracing and timelines are not tied to streaming: offline
        // reconstruction still works with progress off.
        assert!(result.get("trace").is_some());
        assert!(result.get("timeline").is_some());
    }

    #[test]
    fn explicit_shutdown_ends_the_session() {
        let lines = format!(
            "{}\n{}\n",
            format_args!(r#"{{"schema":"{REQUEST_SCHEMA}","op":"status"}}"#),
            format_args!(r#"{{"schema":"{REQUEST_SCHEMA}","op":"shutdown","mode":"drain"}}"#),
        );
        let (docs, summary) = run_lines(&lines);
        assert!(summary.client_shutdown);
        let last = docs.last().unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("shutdown"));
        assert_eq!(last.get("mode").unwrap().as_str(), Some("drain"));
    }
}
