//! Session plumbing: wires a [`Server`] to byte streams.
//!
//! One session = one request stream + one response stream. A dedicated
//! writer thread owns the output and drains the server's response
//! channel, so workers never block on a slow client and response lines
//! are never interleaved. EOF on the input is a graceful `drain`
//! shutdown: accepted jobs finish, their results flush, and the final
//! `shutdown` line closes the stream.

use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Arc;
use std::thread;

use crate::cache::ProgramCache;
use crate::core::{Server, ServerConfig, SessionControl, StatsSnapshot};

/// What one session did, for logs and tests.
#[derive(Debug, Clone, Copy)]
pub struct SessionSummary {
    /// Final server statistics (every accepted job is terminal here).
    pub stats: StatsSnapshot,
    /// Whether the client requested shutdown explicitly (vs plain EOF).
    pub client_shutdown: bool,
}

/// Serves one JSONL session over arbitrary streams. Returns when the
/// input reaches EOF or the client sends a `shutdown` request, after
/// every accepted job's terminal response (and the final `shutdown`
/// line) has been written and flushed.
///
/// # Errors
///
/// Propagates I/O errors from either stream; jobs already accepted are
/// still drained and counted before the error is returned.
pub fn serve<R, W>(
    input: R,
    output: W,
    config: ServerConfig,
    cache: Arc<ProgramCache>,
) -> io::Result<SessionSummary>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let (server, rx) = Server::start_with_cache(config, cache);
    let writer = thread::spawn(move || -> io::Result<()> {
        let mut out = output;
        for resp in rx {
            writeln!(out, "{}", resp.to_line())?;
            out.flush()?;
        }
        Ok(())
    });

    let mut client_shutdown = false;
    let mut read_error = None;
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                read_error = Some(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if server.handle_line(&line) == SessionControl::Shutdown {
            client_shutdown = true;
            break;
        }
    }

    server.request_shutdown(false);
    let stats = server.join();
    let write_result = writer
        .join()
        .map_err(|_| io::Error::other("response writer panicked"))?;
    if let Some(e) = read_error {
        return Err(e);
    }
    write_result?;
    Ok(SessionSummary {
        stats,
        client_shutdown,
    })
}

/// Serves sessions over a Unix socket, one connection at a time, all
/// sharing one compiled-circuit cache. A client `shutdown` request ends
/// its session *and* the accept loop; a plain disconnect (EOF) drains
/// that session and waits for the next client.
///
/// # Errors
///
/// Propagates socket errors (bind/accept) and per-session I/O errors.
pub fn serve_unix_socket(path: &Path, config: &ServerConfig) -> io::Result<()> {
    // A stale socket file from a previous run blocks bind; remove it.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    let cache = Arc::new(ProgramCache::new());
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        let summary = serve(reader, stream, config.clone(), Arc::clone(&cache))?;
        if summary.client_shutdown {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::REQUEST_SCHEMA;
    use htforge_obs::parse_json;

    fn run_lines(lines: &str) -> (Vec<htforge_obs::Json>, SessionSummary) {
        let out: Vec<u8> = Vec::new();
        let sink = std::sync::Arc::new(std::sync::Mutex::new(out));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let summary = serve(
            lines.as_bytes(),
            Shared(std::sync::Arc::clone(&sink)),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            Arc::new(ProgramCache::new()),
        )
        .unwrap();
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let docs = text.lines().map(|l| parse_json(l).unwrap()).collect();
        (docs, summary)
    }

    #[test]
    fn eof_drains_and_emits_final_shutdown_line() {
        let submit = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"a","kind":"simulate","circuit":"c17","params":{{"vectors":256}}}}"#
        );
        let (docs, summary) = run_lines(&submit);
        assert!(!summary.client_shutdown);
        assert_eq!(summary.stats.completed, 1);
        let types: Vec<_> = docs
            .iter()
            .map(|d| d.get("type").unwrap().as_str().unwrap().to_owned())
            .collect();
        assert_eq!(types.first().map(String::as_str), Some("ack"));
        assert_eq!(types.last().map(String::as_str), Some("shutdown"));
        assert!(types.iter().any(|t| t == "result"));
    }

    #[test]
    fn garbage_lines_become_error_responses_not_panics() {
        let (docs, summary) = run_lines("}{ nope\n\n[1,2,3]\n");
        assert!(!summary.client_shutdown);
        assert_eq!(summary.stats.submitted, 0);
        // Two non-empty garbage lines → two error lines + shutdown.
        assert_eq!(docs.len(), 3);
        assert!(docs[..2]
            .iter()
            .all(|d| d.get("type").unwrap().as_str() == Some("error")));
    }

    #[test]
    fn progress_frames_stream_before_the_terminal_result() {
        let submit = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"p","kind":"simulate","circuit":"c17","params":{{"vectors":4096,"repeat":4}}}}"#
        );
        let metrics = format!(r#"{{"schema":"{REQUEST_SCHEMA}","op":"metrics"}}"#);
        let (docs, summary) = run_lines(&format!("{submit}\n{metrics}\n"));
        assert_eq!(summary.stats.completed, 1);
        let type_of = |d: &htforge_obs::Json| d.get("type").unwrap().as_str().unwrap().to_owned();
        let first_progress = docs
            .iter()
            .position(|d| type_of(d) == "progress")
            .expect("at least one streamed progress frame");
        let result = docs
            .iter()
            .position(|d| type_of(d) == "result")
            .expect("a terminal result");
        assert!(
            first_progress < result,
            "progress (line {first_progress}) must precede the terminal result (line {result})"
        );
        // Frames validate and share the terminal response's trace id.
        let trace = docs[result].get("trace").unwrap().as_str().unwrap();
        assert_eq!(trace.len(), 16);
        for doc in docs.iter().filter(|d| type_of(d) == "progress") {
            htforge_obs::validate_job_progress(doc.get("progress").unwrap()).unwrap();
            assert_eq!(doc.get("trace").unwrap().as_str(), Some(trace));
        }
        // The terminal line carries a schema-valid per-phase timeline
        // bound to the same trace.
        let timeline = docs[result].get("timeline").expect("timeline");
        htforge_obs::validate_job_timeline(timeline).unwrap();
        assert_eq!(timeline.get("trace").unwrap().as_str(), Some(trace));
        // The report's meta carries the trace too.
        let report = docs[result].get("report").unwrap();
        assert_eq!(
            report.get("meta").unwrap().get("trace").unwrap().as_str(),
            Some(trace)
        );
        // The metrics introspection line embeds a schema-valid
        // snapshot plus the budget profile store.
        let metrics_doc = docs
            .iter()
            .find(|d| type_of(d) == "metrics")
            .expect("a metrics response");
        htforge_obs::validate_metrics_snapshot(metrics_doc.get("snapshot").unwrap()).unwrap();
        assert!(metrics_doc.get("budget_profiles").is_some());
    }

    #[test]
    fn disabling_progress_suppresses_frames_but_keeps_timelines() {
        let submit = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"q","kind":"simulate","circuit":"c17","params":{{"vectors":1024}}}}"#
        );
        let out: Vec<u8> = Vec::new();
        let sink = std::sync::Arc::new(std::sync::Mutex::new(out));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        serve(
            submit.as_bytes(),
            Shared(std::sync::Arc::clone(&sink)),
            ServerConfig {
                workers: 1,
                progress: false,
                ..ServerConfig::default()
            },
            Arc::new(ProgramCache::new()),
        )
        .unwrap();
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let docs: Vec<htforge_obs::Json> = text.lines().map(|l| parse_json(l).unwrap()).collect();
        assert!(docs
            .iter()
            .all(|d| d.get("type").unwrap().as_str() != Some("progress")));
        let result = docs
            .iter()
            .find(|d| d.get("type").unwrap().as_str() == Some("result"))
            .unwrap();
        // Tracing and timelines are not tied to streaming: offline
        // reconstruction still works with progress off.
        assert!(result.get("trace").is_some());
        assert!(result.get("timeline").is_some());
    }

    #[test]
    fn explicit_shutdown_ends_the_session() {
        let lines = format!(
            "{}\n{}\n",
            format_args!(r#"{{"schema":"{REQUEST_SCHEMA}","op":"status"}}"#),
            format_args!(r#"{{"schema":"{REQUEST_SCHEMA}","op":"shutdown","mode":"drain"}}"#),
        );
        let (docs, summary) = run_lines(&lines);
        assert!(summary.client_shutdown);
        let last = docs.last().unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("shutdown"));
        assert_eq!(last.get("mode").unwrap().as_str(), Some("drain"));
    }
}
