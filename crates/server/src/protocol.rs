//! The versioned JSONL request/response protocol (`DESIGN.md` §10).
//!
//! One request per line, one response per line. Requests carry the
//! schema tag [`REQUEST_SCHEMA`]; every response carries
//! [`RESPONSE_SCHEMA`]. Malformed input — byte soup, truncated JSON,
//! wrong schema, missing fields — must yield a structured
//! [`Response::Error`], never a panic: the parser here returns
//! [`RequestError`] for every failure mode and the fuzz suite
//! (`tests/server_protocol.rs`) pins that contract.
//!
//! [`Request::to_json`] followed by [`parse_request`] round-trips
//! losslessly (field order in the incoming object does not matter), so
//! clients may be regenerated from captured traffic.

use htforge_obs::{parse_json, Json};

/// Schema tag required on every request line.
pub const REQUEST_SCHEMA: &str = "htforge.job_request/v1";
/// Schema tag stamped on every response line.
pub const RESPONSE_SCHEMA: &str = "htforge.job_response/v1";

/// The four job classes the daemon executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Chunked bit-parallel simulation; returns an output digest.
    Simulate,
    /// Full compatibility-graph trojan insertion pipeline.
    Insert,
    /// Test generation + stuck-at fault grading on the golden design.
    Grade,
    /// Insertion followed by TC/DC evaluation of a detection scheme.
    Detect,
}

impl JobKind {
    /// Wire name of the kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Simulate => "simulate",
            JobKind::Insert => "insert",
            JobKind::Grade => "grade",
            JobKind::Detect => "detect",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn parse(s: &str) -> Option<JobKind> {
        match s {
            "simulate" => Some(JobKind::Simulate),
            "insert" => Some(JobKind::Insert),
            "grade" => Some(JobKind::Grade),
            "detect" => Some(JobKind::Detect),
            _ => None,
        }
    }
}

/// Where the job's circuit comes from. The variant (plus payload) is
/// the cache key: two jobs naming the same builtin, or carrying
/// inline netlists that are identical after comment/whitespace
/// canonicalization, share one compiled `SimProgram`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSource {
    /// A built-in benchmark circuit (`c17`, `c2670`, …).
    Builtin(String),
    /// An inline `.bench` netlist carried in the request.
    Inline(String),
}

impl CircuitSource {
    /// Short human-readable label (builtin name or `inline:<hash>`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CircuitSource::Builtin(name) => name.clone(),
            CircuitSource::Inline(_) => format!("inline:{:016x}", self.content_hash()),
        }
    }

    /// Content hash keying the compiled-program cache. Builtins hash
    /// their name; inline netlists hash a canonicalized statement
    /// stream (comments stripped, lines trimmed, blanks skipped —
    /// mirroring the `.bench` lexer) so a reformatted copy of the same
    /// circuit lands on the same cache entry. The variant tag keeps
    /// `Builtin(x)` and `Inline(x)` distinct.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        match self {
            CircuitSource::Builtin(name) => fnv1a(fnv1a(FNV_OFFSET, b"builtin:"), name.as_bytes()),
            CircuitSource::Inline(text) => {
                let mut h = fnv1a(FNV_OFFSET, b"inline:");
                for raw in text.lines() {
                    let line = match raw.find('#') {
                        Some(pos) => &raw[..pos],
                        None => raw,
                    };
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    h = fnv1a(h, line.as_bytes());
                    h = fnv1a(h, b"\n");
                }
                h
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, folded into `h` (used for cache keys and
/// result digests — stable across platforms and runs).
#[must_use]
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one word into an FNV-1a digest (for packed simulation output).
#[must_use]
pub fn fnv1a_word(h: u64, w: u64) -> u64 {
    fnv1a(h, &w.to_le_bytes())
}

/// Tunable job parameters; every field has a default so `params` may be
/// omitted entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct JobParams {
    /// Simulation / profiling vectors (default 1024, clamped to 2²⁴).
    pub vectors: usize,
    /// RNG seed for patterns, schemes and the insertion pipeline.
    pub seed: u64,
    /// `simulate` only: repeat the chunk sweep this many times
    /// (load-generation and long-running-job knob; default 1).
    pub repeat: usize,
    /// Rare-node threshold θ (default 0.2).
    pub theta: f64,
    /// Trigger width q for insert/detect (default 2).
    pub trigger_nodes: usize,
    /// Trojan instances for insert/detect (default 1).
    pub instances: usize,
    /// Detection scheme for grade/detect: `random`, `mero`, `ndatpg`.
    pub scheme: String,
    /// Scheme budget: vector count for `random`, N-detect parameter for
    /// `mero`/`ndatpg` (default 256).
    pub tests: usize,
}

impl Default for JobParams {
    fn default() -> Self {
        JobParams {
            vectors: 1024,
            seed: 1,
            repeat: 1,
            theta: 0.2,
            trigger_nodes: 2,
            instances: 1,
            scheme: "random".to_owned(),
            tests: 256,
        }
    }
}

/// One submitted job: identity, circuit, class, parameters, and the
/// admission-control fields (priority, deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Tenant the job belongs to (sessions default this; `default` if
    /// never set). Job ids are scoped per tenant.
    pub tenant: String,
    /// Client-chosen job id, unique among the tenant's active jobs.
    pub id: String,
    /// Job class.
    pub kind: JobKind,
    /// Circuit to operate on.
    pub circuit: CircuitSource,
    /// Scheduling priority; higher runs first (default 0).
    pub priority: i64,
    /// Per-job wall-clock budget in milliseconds; expiry degrades or
    /// times the job out (`status: "timeout"`), it never hangs.
    pub deadline_ms: Option<u64>,
    /// Job parameters.
    pub params: JobParams,
}

impl JobSpec {
    /// The job's `(tenant, id)` key.
    #[must_use]
    pub fn key(&self) -> (String, String) {
        (self.tenant.clone(), self.id.clone())
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job.
    Submit(Box<JobSpec>),
    /// Cancel a queued or running job.
    Cancel {
        /// Tenant scope (empty = session default).
        tenant: String,
        /// Job id to cancel.
        id: String,
    },
    /// Retrieve the parked terminal of a job whose submitting session
    /// disconnected before the result arrived (reconnect flow).
    Pickup {
        /// Tenant scope (empty = session default).
        tenant: String,
        /// Job id whose terminal to retrieve.
        id: String,
    },
    /// Report queue depth, in-flight count and cache statistics.
    Status,
    /// Full metrics introspection: a `htforge.metrics_snapshot/v1`
    /// snapshot of every counter/gauge/histogram plus the per-class
    /// staged-budget profiles and event-ring statistics.
    Metrics,
    /// Stop the daemon: `drain` finishes all accepted jobs first,
    /// `drop` cancels queued jobs and finishes only the running ones.
    Shutdown {
        /// Cancel queued jobs instead of draining them.
        drop_queued: bool,
    },
}

/// Where request parsing failed, for structured error responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// `parse` (not JSON), `schema` (wrong/missing schema tag) or
    /// `request` (bad op / missing or ill-typed fields).
    pub stage: &'static str,
    /// The job id, when it was recoverable from the line.
    pub id: Option<String>,
    /// Human-readable description.
    pub error: String,
}

impl RequestError {
    fn new(stage: &'static str, id: Option<String>, error: impl Into<String>) -> Self {
        RequestError {
            stage,
            id,
            error: error.into(),
        }
    }
}

fn str_field(obj: &Json, key: &str) -> Option<String> {
    obj.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn u64_field(obj: &Json, key: &str, id: &Option<String>) -> Result<Option<u64>, RequestError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            RequestError::new(
                "request",
                id.clone(),
                format!("`{key}` must be a non-negative integer"),
            )
        }),
    }
}

/// Parses one JSONL request line.
///
/// # Errors
///
/// Returns a [`RequestError`] naming the failing stage; this function
/// never panics on any input (fuzz-pinned).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let doc = parse_json(line).map_err(|e| RequestError::new("parse", None, e.to_string()))?;
    if doc.as_obj().is_none() {
        return Err(RequestError::new(
            "schema",
            None,
            "request must be a JSON object",
        ));
    }
    let id = str_field(&doc, "id");
    match doc.get("schema").and_then(Json::as_str) {
        None => {
            return Err(RequestError::new(
                "schema",
                id,
                format!("missing `schema` (expected `{REQUEST_SCHEMA}`)"),
            ))
        }
        Some(s) if s != REQUEST_SCHEMA => {
            return Err(RequestError::new(
                "schema",
                id,
                format!("schema is `{s}`, expected `{REQUEST_SCHEMA}`"),
            ))
        }
        Some(_) => {}
    }
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::new("request", id.clone(), "missing string `op`"))?;
    match op {
        "submit" => parse_submit(&doc, id).map(|s| Request::Submit(Box::new(s))),
        "cancel" => {
            let id = id
                .ok_or_else(|| RequestError::new("request", None, "cancel requires string `id`"))?;
            Ok(Request::Cancel {
                tenant: str_field(&doc, "tenant").unwrap_or_default(),
                id,
            })
        }
        "pickup" => {
            let id = id
                .ok_or_else(|| RequestError::new("request", None, "pickup requires string `id`"))?;
            Ok(Request::Pickup {
                tenant: str_field(&doc, "tenant").unwrap_or_default(),
                id,
            })
        }
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => {
            let drop_queued = match doc.get("mode").and_then(Json::as_str) {
                None | Some("drain") => false,
                Some("drop") => true,
                Some(other) => {
                    return Err(RequestError::new(
                        "request",
                        id,
                        format!("shutdown mode `{other}` (expected drain or drop)"),
                    ))
                }
            };
            Ok(Request::Shutdown { drop_queued })
        }
        other => Err(RequestError::new(
            "request",
            id,
            format!("unknown op `{other}` (submit, cancel, pickup, status, metrics, shutdown)"),
        )),
    }
}

fn parse_submit(doc: &Json, id: Option<String>) -> Result<JobSpec, RequestError> {
    let id = id.ok_or_else(|| RequestError::new("request", None, "submit requires string `id`"))?;
    let some_id = Some(id.clone());
    let kind_str = doc.get("kind").and_then(Json::as_str).ok_or_else(|| {
        RequestError::new("request", some_id.clone(), "submit requires string `kind`")
    })?;
    let kind = JobKind::parse(kind_str).ok_or_else(|| {
        RequestError::new(
            "request",
            some_id.clone(),
            format!("unknown kind `{kind_str}` (simulate, insert, grade, detect)"),
        )
    })?;
    let circuit = match (str_field(doc, "circuit"), str_field(doc, "netlist")) {
        (Some(name), None) => CircuitSource::Builtin(name),
        (None, Some(text)) => CircuitSource::Inline(text),
        (Some(_), Some(_)) => {
            return Err(RequestError::new(
                "request",
                some_id,
                "give `circuit` or `netlist`, not both",
            ))
        }
        (None, None) => {
            return Err(RequestError::new(
                "request",
                some_id,
                "submit requires `circuit` (builtin name) or `netlist` (inline .bench)",
            ))
        }
    };
    let priority = match doc.get("priority") {
        None | Some(Json::Null) => 0,
        Some(v) => match v.as_f64() {
            Some(n) if n.fract() == 0.0 && n.abs() < 9e15 => n as i64,
            _ => {
                return Err(RequestError::new(
                    "request",
                    some_id,
                    "`priority` must be an integer",
                ))
            }
        },
    };
    let deadline_ms = u64_field(doc, "deadline_ms", &some_id)?;
    let params = parse_params(doc.get("params"), &some_id)?;
    Ok(JobSpec {
        tenant: str_field(doc, "tenant").unwrap_or_default(),
        id,
        kind,
        circuit,
        priority,
        deadline_ms,
        params,
    })
}

fn parse_params(doc: Option<&Json>, id: &Option<String>) -> Result<JobParams, RequestError> {
    let mut params = JobParams::default();
    let Some(doc) = doc else { return Ok(params) };
    if matches!(doc, Json::Null) {
        return Ok(params);
    }
    if doc.as_obj().is_none() {
        return Err(RequestError::new(
            "request",
            id.clone(),
            "`params` must be an object",
        ));
    }
    if let Some(v) = u64_field(doc, "vectors", id)? {
        // Clamp: admission control against absurd single-job memory.
        params.vectors = (v.min(1 << 24) as usize).max(1);
    }
    if let Some(v) = u64_field(doc, "seed", id)? {
        params.seed = v;
    }
    if let Some(v) = u64_field(doc, "repeat", id)? {
        params.repeat = (v.min(1 << 20) as usize).max(1);
    }
    if let Some(v) = doc.get("theta") {
        params.theta = v
            .as_f64()
            .filter(|t| (0.0..=0.5).contains(t))
            .ok_or_else(|| {
                RequestError::new(
                    "request",
                    id.clone(),
                    "`theta` must be a number in [0, 0.5]",
                )
            })?;
    }
    if let Some(v) = u64_field(doc, "trigger_nodes", id)? {
        params.trigger_nodes = (v.min(64) as usize).max(1);
    }
    if let Some(v) = u64_field(doc, "instances", id)? {
        params.instances = (v.min(256) as usize).max(1);
    }
    if let Some(s) = doc.get("scheme") {
        let s = s
            .as_str()
            .ok_or_else(|| RequestError::new("request", id.clone(), "`scheme` must be a string"))?;
        if !matches!(s, "random" | "mero" | "ndatpg") {
            return Err(RequestError::new(
                "request",
                id.clone(),
                format!("unknown scheme `{s}` (random, mero, ndatpg)"),
            ));
        }
        params.scheme = s.to_owned();
    }
    if let Some(v) = u64_field(doc, "tests", id)? {
        params.tests = (v.min(1 << 20) as usize).max(1);
    }
    Ok(params)
}

impl Request {
    /// Serializes the request in canonical field order; the wire form
    /// round-trips through [`parse_request`] losslessly.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("schema", Json::Str(REQUEST_SCHEMA.to_owned()))];
        match self {
            Request::Submit(spec) => {
                fields.push(("op", Json::Str("submit".into())));
                if !spec.tenant.is_empty() {
                    fields.push(("tenant", Json::Str(spec.tenant.clone())));
                }
                fields.push(("id", Json::Str(spec.id.clone())));
                fields.push(("kind", Json::Str(spec.kind.as_str().into())));
                match &spec.circuit {
                    CircuitSource::Builtin(name) => {
                        fields.push(("circuit", Json::Str(name.clone())));
                    }
                    CircuitSource::Inline(text) => {
                        fields.push(("netlist", Json::Str(text.clone())));
                    }
                }
                fields.push(("priority", Json::Num(spec.priority as f64)));
                if let Some(ms) = spec.deadline_ms {
                    fields.push(("deadline_ms", Json::Num(ms as f64)));
                }
                let p = &spec.params;
                fields.push((
                    "params",
                    Json::obj(vec![
                        ("vectors", Json::Num(p.vectors as f64)),
                        ("seed", Json::Num(p.seed as f64)),
                        ("repeat", Json::Num(p.repeat as f64)),
                        ("theta", Json::Num(p.theta)),
                        ("trigger_nodes", Json::Num(p.trigger_nodes as f64)),
                        ("instances", Json::Num(p.instances as f64)),
                        ("scheme", Json::Str(p.scheme.clone())),
                        ("tests", Json::Num(p.tests as f64)),
                    ]),
                ));
            }
            Request::Cancel { tenant, id } => {
                fields.push(("op", Json::Str("cancel".into())));
                if !tenant.is_empty() {
                    fields.push(("tenant", Json::Str(tenant.clone())));
                }
                fields.push(("id", Json::Str(id.clone())));
            }
            Request::Pickup { tenant, id } => {
                fields.push(("op", Json::Str("pickup".into())));
                if !tenant.is_empty() {
                    fields.push(("tenant", Json::Str(tenant.clone())));
                }
                fields.push(("id", Json::Str(id.clone())));
            }
            Request::Status => fields.push(("op", Json::Str("status".into()))),
            Request::Metrics => fields.push(("op", Json::Str("metrics".into()))),
            Request::Shutdown { drop_queued } => {
                fields.push(("op", Json::Str("shutdown".into())));
                fields.push((
                    "mode",
                    Json::Str(if *drop_queued { "drop" } else { "drain" }.into()),
                ));
            }
        }
        Json::obj(fields)
    }
}

/// Terminal verdict of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed; `result` holds the payload.
    Done,
    /// Panicked or errored; `error` explains.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
    /// The per-job deadline expired before a usable result.
    Timeout,
}

impl JobStatus {
    /// Wire name of the status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Timeout => "timeout",
        }
    }

    /// Parses a wire name (journal replay decodes terminal records).
    #[must_use]
    pub fn parse(s: &str) -> Option<JobStatus> {
        match s {
            "done" => Some(JobStatus::Done),
            "failed" => Some(JobStatus::Failed),
            "cancelled" => Some(JobStatus::Cancelled),
            "timeout" => Some(JobStatus::Timeout),
            _ => None,
        }
    }
}

/// The terminal response for one job (exactly one per accepted job).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Tenant of the job.
    pub tenant: String,
    /// Job id.
    pub id: String,
    /// Job class.
    pub kind: JobKind,
    /// Terminal verdict.
    pub status: JobStatus,
    /// Submit-to-completion latency in milliseconds.
    pub latency_ms: f64,
    /// Kind-specific result payload (`status == done`).
    pub result: Option<Json>,
    /// Failure/cancellation detail.
    pub error: Option<String>,
    /// The per-job `htforge.run_report/v1` artifact.
    pub report: Option<Json>,
    /// 16-hex trace id correlating this terminal line with its
    /// streamed progress frames and report spans (empty = untraced,
    /// e.g. a job cancelled before it reached a worker).
    pub trace: String,
    /// The per-phase `htforge.job_timeline/v1` document (executed jobs
    /// whose phases were observed).
    pub timeline: Option<Json>,
}

/// One streamed `htforge.job_progress/v1` frame, interleaved before the
/// job's terminal response.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProgress {
    /// Tenant of the job.
    pub tenant: String,
    /// Job id.
    pub id: String,
    /// Job class.
    pub kind: JobKind,
    /// 16-hex trace id shared with the terminal response.
    pub trace: String,
    /// The embedded `htforge.job_progress/v1` document.
    pub frame: Json,
}

/// A response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Immediate acknowledgement of a request (`op` names which).
    Ack {
        /// The acknowledged op.
        op: String,
        /// Tenant scope, when relevant.
        tenant: String,
        /// Job id, when relevant.
        id: Option<String>,
        /// Op-specific detail fields appended to the line.
        detail: Vec<(String, Json)>,
    },
    /// Terminal job outcome.
    Result(Box<JobResult>),
    /// A streamed progress frame for a running job (zero or more per
    /// job, always before its terminal [`Response::Result`]).
    Progress(Box<JobProgress>),
    /// Structured request error (malformed line, bad fields, admission
    /// rejection). Carries the job id when it was recoverable.
    Error {
        /// Failing stage (`parse`, `schema`, `request`, `submit`,
        /// `respond`).
        stage: String,
        /// Job id, when known.
        id: Option<String>,
        /// Description.
        error: String,
    },
    /// Admission-control rejection: the job was **not** accepted (no
    /// terminal response will follow) and the client should back off
    /// for `retry_after_ms` before resubmitting.
    Reject {
        /// Tenant scope of the rejected submit.
        tenant: String,
        /// Job id of the rejected submit.
        id: String,
        /// Machine-readable reason: `queue_full` (bounded queue or
        /// in-flight quota exhausted), `rate_limit` (token bucket
        /// empty) or `accept_fault` (injected admission fault).
        reason: String,
        /// Human-readable description.
        error: String,
        /// Suggested client back-off before resubmitting.
        retry_after_ms: u64,
    },
    /// Server status snapshot.
    Status(Json),
    /// Metrics introspection body (extends the line like `Status`);
    /// carries the `htforge.metrics_snapshot/v1` document under
    /// `snapshot`.
    Metrics(Json),
    /// Final line before the daemon (or session drain) exits.
    Shutdown {
        /// `drain` or `drop`.
        mode: String,
        /// Jobs completed over the daemon lifetime.
        jobs_completed: u64,
    },
}

impl Response {
    /// Builds the error response for a [`RequestError`].
    #[must_use]
    pub fn from_request_error(e: &RequestError) -> Response {
        Response::Error {
            stage: e.stage.to_owned(),
            id: e.id.clone(),
            error: e.error.clone(),
        }
    }

    /// Serializes the response line.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("schema", Json::Str(RESPONSE_SCHEMA.to_owned()))];
        match self {
            Response::Ack {
                op,
                tenant,
                id,
                detail,
            } => {
                fields.push(("type", Json::Str("ack".into())));
                fields.push(("op", Json::Str(op.clone())));
                if !tenant.is_empty() {
                    fields.push(("tenant", Json::Str(tenant.clone())));
                }
                if let Some(id) = id {
                    fields.push(("id", Json::Str(id.clone())));
                }
                let mut json = Json::obj(fields);
                if let Json::Obj(obj) = &mut json {
                    obj.extend(detail.iter().cloned());
                }
                return json;
            }
            Response::Result(r) => {
                fields.push(("type", Json::Str("result".into())));
                fields.push(("tenant", Json::Str(r.tenant.clone())));
                fields.push(("id", Json::Str(r.id.clone())));
                fields.push(("kind", Json::Str(r.kind.as_str().into())));
                fields.push(("status", Json::Str(r.status.as_str().into())));
                fields.push(("latency_ms", Json::Num(r.latency_ms)));
                if let Some(result) = &r.result {
                    fields.push(("result", result.clone()));
                }
                if let Some(error) = &r.error {
                    fields.push(("error", Json::Str(error.clone())));
                }
                if let Some(report) = &r.report {
                    fields.push(("report", report.clone()));
                }
                if !r.trace.is_empty() {
                    fields.push(("trace", Json::Str(r.trace.clone())));
                }
                if let Some(timeline) = &r.timeline {
                    fields.push(("timeline", timeline.clone()));
                }
            }
            Response::Progress(p) => {
                fields.push(("type", Json::Str("progress".into())));
                fields.push(("tenant", Json::Str(p.tenant.clone())));
                fields.push(("id", Json::Str(p.id.clone())));
                fields.push(("kind", Json::Str(p.kind.as_str().into())));
                if !p.trace.is_empty() {
                    fields.push(("trace", Json::Str(p.trace.clone())));
                }
                fields.push(("progress", p.frame.clone()));
            }
            Response::Reject {
                tenant,
                id,
                reason,
                error,
                retry_after_ms,
            } => {
                fields.push(("type", Json::Str("reject".into())));
                fields.push(("tenant", Json::Str(tenant.clone())));
                fields.push(("id", Json::Str(id.clone())));
                fields.push(("reason", Json::Str(reason.clone())));
                fields.push(("error", Json::Str(error.clone())));
                fields.push(("retry_after_ms", Json::Num(*retry_after_ms as f64)));
            }
            Response::Error { stage, id, error } => {
                fields.push(("type", Json::Str("error".into())));
                fields.push(("stage", Json::Str(stage.clone())));
                fields.push((
                    "id",
                    id.as_ref().map_or(Json::Null, |i| Json::Str(i.clone())),
                ));
                fields.push(("error", Json::Str(error.clone())));
            }
            Response::Status(body) => {
                fields.push(("type", Json::Str("status".into())));
                let mut json = Json::obj(fields);
                if let (Json::Obj(obj), Json::Obj(extra)) = (&mut json, body) {
                    obj.extend(extra.iter().cloned());
                }
                return json;
            }
            Response::Metrics(body) => {
                fields.push(("type", Json::Str("metrics".into())));
                let mut json = Json::obj(fields);
                if let (Json::Obj(obj), Json::Obj(extra)) = (&mut json, body) {
                    obj.extend(extra.iter().cloned());
                }
                return json;
            }
            Response::Shutdown {
                mode,
                jobs_completed,
            } => {
                fields.push(("type", Json::Str("shutdown".into())));
                fields.push(("mode", Json::Str(mode.clone())));
                fields.push(("jobs_completed", Json::Num(*jobs_completed as f64)));
            }
        }
        Json::obj(fields)
    }

    /// The response as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        self.to_json().compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            tenant: "acme".into(),
            id: "j-7".into(),
            kind: JobKind::Detect,
            circuit: CircuitSource::Builtin("c17".into()),
            priority: 3,
            deadline_ms: Some(1500),
            params: JobParams {
                vectors: 2048,
                seed: 9,
                scheme: "mero".into(),
                ..JobParams::default()
            },
        }
    }

    #[test]
    fn submit_round_trips() {
        let req = Request::Submit(Box::new(sample_spec()));
        let line = req.to_json().compact();
        assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn control_ops_round_trip() {
        for req in [
            Request::Cancel {
                tenant: String::new(),
                id: "x".into(),
            },
            Request::Pickup {
                tenant: "acme".into(),
                id: "job-1".into(),
            },
            Request::Pickup {
                tenant: String::new(),
                id: "job-2".into(),
            },
            Request::Status,
            Request::Metrics,
            Request::Shutdown { drop_queued: true },
            Request::Shutdown { drop_queued: false },
        ] {
            let line = req.to_json().compact();
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn inline_netlist_round_trips_and_hashes_by_content() {
        let spec = JobSpec {
            circuit: CircuitSource::Inline("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into()),
            ..sample_spec()
        };
        let req = Request::Submit(Box::new(spec.clone()));
        let parsed = parse_request(&req.to_json().compact()).unwrap();
        assert_eq!(parsed, req);
        let same = CircuitSource::Inline("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into());
        assert_eq!(same.content_hash(), spec.circuit.content_hash());
        assert_ne!(
            CircuitSource::Builtin("c17".into()).content_hash(),
            spec.circuit.content_hash()
        );
        // A builtin named like inline text must not collide by tag.
        assert_ne!(
            CircuitSource::Builtin("x".into()).content_hash(),
            CircuitSource::Inline("x".into()).content_hash()
        );
    }

    #[test]
    fn inline_hash_ignores_comments_and_whitespace() {
        let tight = CircuitSource::Inline("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into());
        let airy = CircuitSource::Inline(
            "# benchmark circuit\n\n  INPUT(a)  \n\nOUTPUT(y)   # primary output\n\ny = NOT(a)"
                .into(),
        );
        assert_eq!(tight.content_hash(), airy.content_hash());
        // Different statements still hash apart.
        let other = CircuitSource::Inline("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n".into());
        assert_ne!(tight.content_hash(), other.content_hash());
        // Canonicalization joins on statement boundaries, not by
        // concatenation: the line split must stay significant.
        let merged = CircuitSource::Inline("INPUT(a)\nOUTPUT(y)y = NOT(a)\n".into());
        assert_ne!(tight.content_hash(), merged.content_hash());
    }

    #[test]
    fn structured_errors_name_the_stage() {
        assert_eq!(parse_request("{nope").unwrap_err().stage, "parse");
        assert_eq!(parse_request("[1,2]").unwrap_err().stage, "schema");
        assert_eq!(
            parse_request("{\"op\":\"submit\"}").unwrap_err().stage,
            "schema"
        );
        let wrong_schema = r#"{"schema":"htforge.job_request/v0","op":"status"}"#;
        assert_eq!(parse_request(wrong_schema).unwrap_err().stage, "schema");
        let no_kind =
            format!(r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"a","circuit":"c17"}}"#);
        let err = parse_request(&no_kind).unwrap_err();
        assert_eq!(err.stage, "request");
        assert_eq!(err.id.as_deref(), Some("a"));
        let bad_theta = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"a","kind":"grade","circuit":"c17","params":{{"theta":7}}}}"#
        );
        assert!(parse_request(&bad_theta)
            .unwrap_err()
            .error
            .contains("theta"));
    }

    #[test]
    fn params_default_and_clamp() {
        let minimal = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"a","kind":"simulate","circuit":"c17"}}"#
        );
        let Request::Submit(spec) = parse_request(&minimal).unwrap() else {
            panic!("expected submit")
        };
        assert_eq!(spec.params, JobParams::default());
        assert_eq!(spec.tenant, "");
        assert_eq!(spec.priority, 0);
        let huge = format!(
            r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"a","kind":"simulate","circuit":"c17","params":{{"vectors":99999999999,"repeat":0}}}}"#
        );
        let Request::Submit(spec) = parse_request(&huge).unwrap() else {
            panic!("expected submit")
        };
        assert_eq!(spec.params.vectors, 1 << 24);
        assert_eq!(spec.params.repeat, 1);
    }

    #[test]
    fn responses_serialize_with_schema_and_type() {
        let result = Response::Result(Box::new(JobResult {
            tenant: "t".into(),
            id: "j".into(),
            kind: JobKind::Simulate,
            status: JobStatus::Done,
            latency_ms: 1.5,
            result: Some(Json::obj(vec![("digest", Json::Str("0xab".into()))])),
            error: None,
            report: None,
            trace: String::new(),
            timeline: None,
        }));
        let doc = result.to_json();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(RESPONSE_SCHEMA));
        assert_eq!(doc.get("type").unwrap().as_str(), Some("result"));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
        assert!(doc.get("error").is_none());
        // An untraced result omits `trace` and `timeline` entirely.
        assert!(doc.get("trace").is_none());
        assert!(doc.get("timeline").is_none());

        let err = Response::Error {
            stage: "parse".into(),
            id: None,
            error: "bad".into(),
        };
        let doc = err.to_json();
        assert_eq!(doc.get("id"), Some(&Json::Null));
        // Every response line is itself valid JSON.
        assert!(parse_json(&err.to_line()).is_ok());
    }

    #[test]
    fn reject_lines_carry_reason_and_retry_hint() {
        let resp = Response::Reject {
            tenant: "acme".into(),
            id: "j-9".into(),
            reason: "queue_full".into(),
            error: "queue depth 64 at limit".into(),
            retry_after_ms: 250,
        };
        let doc = resp.to_json();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(RESPONSE_SCHEMA));
        assert_eq!(doc.get("type").unwrap().as_str(), Some("reject"));
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("queue_full"));
        assert_eq!(doc.get("retry_after_ms").unwrap().as_f64(), Some(250.0));
        assert!(parse_json(&resp.to_line()).is_ok());
    }

    #[test]
    fn job_status_round_trips_through_wire_names() {
        for status in [
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
            JobStatus::Timeout,
        ] {
            assert_eq!(JobStatus::parse(status.as_str()), Some(status));
        }
        assert_eq!(JobStatus::parse("exploded"), None);
    }

    #[test]
    fn progress_lines_embed_a_schema_valid_frame() {
        let frame = htforge_obs::ProgressFrame {
            phase: "clique_enumeration".into(),
            event: "enter".into(),
            percent: None,
            eta_ms: Some(420.0),
            detail: None,
        };
        let resp = Response::Progress(Box::new(JobProgress {
            tenant: "acme".into(),
            id: "j-7".into(),
            kind: JobKind::Insert,
            trace: "00000000deadbeef".into(),
            frame: frame.to_json(),
        }));
        let doc = resp.to_json();
        assert_eq!(doc.get("type").unwrap().as_str(), Some("progress"));
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(RESPONSE_SCHEMA));
        assert_eq!(doc.get("trace").unwrap().as_str(), Some("00000000deadbeef"));
        let embedded = doc.get("progress").unwrap();
        htforge_obs::validate_job_progress(embedded).unwrap();
    }

    #[test]
    fn traced_results_carry_trace_and_timeline() {
        let timeline = htforge_obs::JobTimeline::from_durations(
            "00000000deadbeef",
            &[("rare_extraction".into(), 10.0), ("insertion".into(), 5.0)],
        );
        let resp = Response::Result(Box::new(JobResult {
            tenant: "t".into(),
            id: "j".into(),
            kind: JobKind::Insert,
            status: JobStatus::Done,
            latency_ms: 15.0,
            result: None,
            error: None,
            report: None,
            trace: "00000000deadbeef".into(),
            timeline: Some(timeline.to_json()),
        }));
        let doc = resp.to_json();
        assert_eq!(doc.get("trace").unwrap().as_str(), Some("00000000deadbeef"));
        htforge_obs::validate_job_timeline(doc.get("timeline").unwrap()).unwrap();
    }
}
