//! Content-hash-keyed cache of compiled circuits.
//!
//! The daemon's whole point is that repeated jobs on the same circuit
//! skip the expensive prefix: `.bench` parsing, scan-cutting, and
//! `SimProgram` compilation happen once per *content hash* (see
//! [`CircuitSource::content_hash`]) and every later job shares the
//! result through [`Arc`]s ([`BoundSimulator::from_arc`] — no netlist
//! copy either). Rare-node profiles are cached per `(θ, vectors, seed)`
//! on top, since `grade`/`detect` jobs re-profile identically.
//!
//! Compilation happens *under the map lock*: two racing jobs on the
//! same new circuit never compile twice (the concurrency differential
//! suite asserts exactly-one-compile via [`CacheStats`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use htforge_circuits as circuits;
use htforge_netlist::{bench, Netlist};
use htforge_sim::{simulator::BoundSimulator, PatternSet, RareNodeExtractor, RareNodeSet};

use crate::protocol::CircuitSource;

/// One compiled circuit shared by every job that names it.
#[derive(Debug)]
pub struct CompiledCircuit {
    /// Human-readable label (builtin name or `inline:<hash>`).
    pub label: String,
    /// The design as loaded (may be sequential).
    pub golden: Arc<Netlist>,
    /// Combinational view: `golden` itself, or its scan cut.
    pub comb: Arc<Netlist>,
    /// Simulator compiled over `comb` (shared, thread-safe to run).
    pub sim: BoundSimulator,
    rare: Mutex<HashMap<RareKey, Arc<RareNodeSet>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RareKey {
    theta_bits: u64,
    vectors: usize,
    seed: u64,
}

/// Monotonic cache counters (mirrored into the `server.cache_*` obs
/// counters by the core; exposed directly for test assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a compiled circuit.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Compilations performed (== `misses` unless a compile failed).
    pub compiles: u64,
    /// Rare-profile lookups served from cache.
    pub rare_hits: u64,
    /// Rare-profile lookups that had to profile.
    pub rare_misses: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    rare_hits: AtomicU64,
    rare_misses: AtomicU64,
}

/// The compiled-program cache.
#[derive(Debug, Default)]
pub struct ProgramCache {
    map: Mutex<HashMap<u64, Arc<CompiledCircuit>>>,
    counters: Counters,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct circuits currently cached.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            compiles: self.counters.compiles.load(Ordering::Relaxed),
            rare_hits: self.counters.rare_hits.load(Ordering::Relaxed),
            rare_misses: self.counters.rare_misses.load(Ordering::Relaxed),
        }
    }

    /// Hit fraction over all compiled-circuit lookups so far (0 when
    /// none happened yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let s = self.stats();
        let total = s.hits + s.misses;
        if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        }
    }

    /// Returns the compiled circuit for `src`, compiling it on first
    /// sight. The boolean is `true` on a cache hit.
    ///
    /// # Errors
    ///
    /// Returns a description when the circuit cannot be loaded, parsed
    /// or compiled (failed compiles are not cached; a later retry
    /// recompiles).
    pub fn get_or_compile(
        &self,
        src: &CircuitSource,
    ) -> Result<(Arc<CompiledCircuit>, bool), String> {
        let key = src.content_hash();
        let mut map = self.map.lock().unwrap();
        if let Some(hit) = map.get(&key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(compile(src)?);
        self.counters.compiles.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&compiled));
        Ok((compiled, false))
    }

    /// The rare-node profile of `circuit` at `(theta, vectors, seed)`,
    /// computed once and shared thereafter.
    ///
    /// # Errors
    ///
    /// Propagates the extractor's netlist error.
    pub fn rare_profile(
        &self,
        circuit: &CompiledCircuit,
        theta: f64,
        vectors: usize,
        seed: u64,
    ) -> Result<Arc<RareNodeSet>, String> {
        let key = RareKey {
            theta_bits: theta.to_bits(),
            vectors,
            seed,
        };
        let mut rare = circuit.rare.lock().unwrap();
        if let Some(hit) = rare.get(&key) {
            self.counters.rare_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.counters.rare_misses.fetch_add(1, Ordering::Relaxed);
        let patterns = PatternSet::random(circuit.comb.inputs().len(), vectors, seed);
        let set = RareNodeExtractor::new(theta)
            .extract(&circuit.comb, &patterns)
            .map_err(|e| e.to_string())?;
        let set = Arc::new(set);
        rare.insert(key, Arc::clone(&set));
        Ok(set)
    }
}

fn compile(src: &CircuitSource) -> Result<CompiledCircuit, String> {
    let golden = match src {
        CircuitSource::Builtin(name) => circuits::load(name).map_err(|e| e.to_string())?,
        CircuitSource::Inline(text) => bench::parse(text, "inline").map_err(|e| e.to_string())?,
    };
    let golden = Arc::new(golden);
    let comb = if golden.dffs().is_empty() {
        Arc::clone(&golden)
    } else {
        Arc::new(golden.scan_cut())
    };
    let sim = BoundSimulator::from_arc(Arc::clone(&comb)).map_err(|e| e.to_string())?;
    Ok(CompiledCircuit {
        label: src.label(),
        golden,
        comb,
        sim,
        rare: Mutex::new(HashMap::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_once_and_hits_thereafter() {
        let cache = ProgramCache::new();
        let src = CircuitSource::Builtin("c17".into());
        let (a, hit_a) = cache.get_or_compile(&src).unwrap();
        let (b, hit_b) = cache.get_or_compile(&src).unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compiles), (1, 1, 1));
        assert_eq!(cache.entries(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inline_and_builtin_are_distinct_entries() {
        let cache = ProgramCache::new();
        let inline = CircuitSource::Inline(bench::write(&circuits::load("c17").unwrap()));
        cache
            .get_or_compile(&CircuitSource::Builtin("c17".into()))
            .unwrap();
        let (compiled, hit) = cache.get_or_compile(&inline).unwrap();
        assert!(!hit);
        assert_eq!(cache.entries(), 2);
        assert!(compiled.label.starts_with("inline:"));
        assert_eq!(compiled.comb.inputs().len(), 5);
    }

    #[test]
    fn reformatted_inline_text_shares_one_entry() {
        let cache = ProgramCache::new();
        let canonical = bench::write(&circuits::load("c17").unwrap());
        let airy = format!(
            "# resubmitted with comments\n\n  {}",
            canonical.replace('\n', "  \n\n  ")
        );
        let (a, hit_a) = cache
            .get_or_compile(&CircuitSource::Inline(canonical))
            .unwrap();
        let (b, hit_b) = cache.get_or_compile(&CircuitSource::Inline(airy)).unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let cache = ProgramCache::new();
        let bad = CircuitSource::Inline("y = NOT(".into());
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache.get_or_compile(&bad).is_err());
        let s = cache.stats();
        assert_eq!((s.misses, s.compiles, cache.entries()), (2, 0, 0));
    }

    #[test]
    fn sequential_circuits_get_a_scan_cut_comb_view() {
        let cache = ProgramCache::new();
        let (compiled, _) = cache
            .get_or_compile(&CircuitSource::Builtin("s1423".into()))
            .unwrap();
        assert!(!compiled.golden.dffs().is_empty());
        assert!(compiled.comb.inputs().len() > compiled.golden.inputs().len());
    }

    #[test]
    fn rare_profiles_cache_per_key() {
        let cache = ProgramCache::new();
        let (c17, _) = cache
            .get_or_compile(&CircuitSource::Builtin("c17".into()))
            .unwrap();
        let a = cache.rare_profile(&c17, 0.3, 512, 1).unwrap();
        let b = cache.rare_profile(&c17, 0.3, 512, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.rare_profile(&c17, 0.3, 512, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let s = cache.stats();
        assert_eq!((s.rare_hits, s.rare_misses), (1, 2));
    }
}
