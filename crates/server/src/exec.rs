//! Job execution: one function per [`JobKind`], each budget-aware.
//!
//! Every executor takes the job's [`RunBudget`] and checks it at phase
//! (or chunk) boundaries, so a cross-thread cancel or an expired
//! deadline turns into a terminal `cancelled`/`timeout` response in
//! bounded time instead of a wedged worker. Results carry a
//! platform-stable FNV-1a digest so the concurrency differential suite
//! can assert concurrent ≡ sequential byte-for-byte.

use std::time::Instant;

use htforge_atpg::{all_faults, fault_simulate, PodemConfig};
use htforge_core::{
    InsertionConfig, InsertionError, InsertionFramework, InsertionOutcome, PayloadKind,
    PhaseTimings,
};
use htforge_detect::{DetectionScheme, MeroDetection, NdAtpgDetection, RandomDetection};
use htforge_netlist::bench;
use htforge_obs::{BudgetExceeded, DegradationNote, Json, RunBudget};
use htforge_sim::PatternSet;

use crate::cache::{CompiledCircuit, ProgramCache};
use crate::progress::ProgressEmitter;
use crate::protocol::{fnv1a, fnv1a_word, JobKind, JobSpec, JobStatus};

/// Patterns per simulate chunk: small enough that the inter-chunk
/// budget check keeps cancellation latency in the low milliseconds on
/// the benchmark circuits, large enough to amortize kernel dispatch.
pub const SIM_CHUNK: usize = 4096;

/// Everything the core needs to respond to one executed job.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Terminal verdict.
    pub status: JobStatus,
    /// Kind-specific payload (`status == Done`).
    pub result: Option<Json>,
    /// Failure/cancel/timeout detail.
    pub error: Option<String>,
    /// Degradation notes taken under budget pressure.
    pub degradations: Vec<DegradationNote>,
    /// Job-scoped counters for the per-job run report.
    pub counters: Vec<(String, u64)>,
    /// Observed `(phase, dur_ms)` pairs in execution order — the
    /// terminal response's `htforge.job_timeline/v1` and the report's
    /// per-phase child spans.
    pub phases: Vec<(String, f64)>,
}

impl ExecOutcome {
    fn done(result: Json) -> Self {
        ExecOutcome {
            status: JobStatus::Done,
            result: Some(result),
            error: None,
            degradations: Vec::new(),
            counters: Vec::new(),
            phases: Vec::new(),
        }
    }

    fn terminal(status: JobStatus, error: impl Into<String>) -> Self {
        ExecOutcome {
            status,
            result: None,
            error: Some(error.into()),
            degradations: Vec::new(),
            counters: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// A `failed` outcome minted by the dispatch path (injected
    /// faults, compile errors, isolated panics).
    #[must_use]
    pub fn dispatch_failure(error: String) -> Self {
        ExecOutcome::terminal(JobStatus::Failed, error)
    }

    fn budget(e: BudgetExceeded) -> Self {
        match e {
            BudgetExceeded::Deadline => {
                ExecOutcome::terminal(JobStatus::Timeout, "deadline expired")
            }
            BudgetExceeded::Cancelled => ExecOutcome::terminal(JobStatus::Cancelled, "cancelled"),
        }
    }
}

/// Runs `job` on its compiled circuit, streaming progress frames as
/// phases advance. Never panics out (panics are the caller's `isolate`
/// responsibility); every budget trip maps to a `Timeout`/`Cancelled`
/// outcome.
#[must_use]
pub fn execute(
    job: &JobSpec,
    circuit: &CompiledCircuit,
    cache: &ProgramCache,
    budget: &RunBudget,
    progress: &ProgressEmitter,
) -> ExecOutcome {
    let mut outcome = match job.kind {
        JobKind::Simulate => exec_simulate(job, circuit, budget, progress),
        JobKind::Insert => exec_insert(job, circuit, budget),
        JobKind::Grade => exec_grade(job, circuit, cache, budget, progress),
        JobKind::Detect => exec_detect(job, circuit, cache, budget, progress),
    };
    // Degradation decisions surface as frames before the terminal
    // response (insertion collects them internally, so "as they
    // happen" is the moment the pipeline hands them back).
    for note in &outcome.degradations {
        progress.degraded(&note.phase, &format!("{}: {}", note.action, note.detail));
    }
    outcome.phases.retain(|(_, dur)| *dur >= 0.0);
    outcome
}

/// The insertion pipeline's timings as ordered `(phase, dur_ms)` pairs.
fn timing_phases(t: &PhaseTimings) -> Vec<(String, f64)> {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    vec![
        ("preprocess".to_owned(), ms(t.preprocess)),
        ("rare_extraction".to_owned(), ms(t.rare_extraction)),
        ("compat_graph".to_owned(), ms(t.compat_graph)),
        ("clique_enumeration".to_owned(), ms(t.clique_enumeration)),
        ("insertion".to_owned(), ms(t.insertion)),
        ("validation".to_owned(), ms(t.validation)),
    ]
}

/// Chunked bit-parallel simulation over `repeat × vectors` random
/// patterns, digesting the primary-output columns. The pattern buffer
/// is truncated and refilled per chunk (the `PatternSet` reuse path the
/// tail-masking hardening pins), and the digest is independent of
/// chunking because each chunk's seed derives from its global index.
fn exec_simulate(
    job: &JobSpec,
    circuit: &CompiledCircuit,
    budget: &RunBudget,
    progress: &ProgressEmitter,
) -> ExecOutcome {
    let p = &job.params;
    let total = p.vectors.saturating_mul(p.repeat);
    let num_inputs = circuit.comb.inputs().len();
    let mut buf = PatternSet::zeros(num_inputs, 0);
    let mut digest = fnv1a(0xcbf2_9ce4_8422_2325, circuit.label.as_bytes());
    let mut ones: u64 = 0;
    let mut chunks: u64 = 0;
    let mut done = 0usize;
    let phase_start = Instant::now();
    progress.phase_enter("simulate");
    while done < total {
        if let Err(e) = budget.check() {
            return ExecOutcome::budget(e);
        }
        let chunk = SIM_CHUNK.min(total - done);
        buf.truncate(0);
        buf.fill_random(chunk, p.seed.wrapping_add(chunks));
        let values = circuit.sim.run(&buf);
        let tail = PatternSet::tail_mask(chunk);
        for &out in circuit.comb.outputs() {
            let words = values.words(out);
            for (w, &word) in words.iter().enumerate() {
                let word = if w + 1 == words.len() {
                    word & tail
                } else {
                    word
                };
                digest = fnv1a_word(digest, word);
                ones += u64::from(word.count_ones());
            }
        }
        done += chunk;
        chunks += 1;
        // No percent frame for the final chunk: `phase_complete`
        // follows immediately and says the same thing in one send.
        if done < total {
            progress.percent("simulate", done as f64 / total.max(1) as f64 * 100.0);
        }
    }
    let dur_ms = phase_start.elapsed().as_secs_f64() * 1e3;
    progress.phase_complete("simulate", dur_ms);
    let mut out = ExecOutcome::done(Json::obj(vec![
        ("digest", Json::Str(format!("{digest:016x}"))),
        ("vectors", Json::Num(total as f64)),
        ("output_ones", Json::Num(ones as f64)),
    ]));
    out.counters = vec![
        ("server.sim_chunks".to_owned(), chunks),
        ("server.sim_vectors".to_owned(), total as u64),
    ];
    out.phases = vec![("simulate".to_owned(), dur_ms)];
    out
}

fn framework_for(job: &JobSpec) -> InsertionFramework {
    let p = &job.params;
    InsertionFramework::new(InsertionConfig {
        theta: p.theta,
        num_vectors: p.vectors,
        trigger_nodes: p.trigger_nodes,
        num_instances: p.instances,
        seed: p.seed,
        payload_kind: PayloadKind::Flip,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    })
}

fn insertion_outcome(
    job: &JobSpec,
    circuit: &CompiledCircuit,
    budget: &RunBudget,
) -> Result<InsertionOutcome, Box<ExecOutcome>> {
    framework_for(job)
        .run_with_budget(&circuit.golden, budget)
        .map_err(|e| match e {
            InsertionError::Timeout { phase } => ExecOutcome::terminal(
                JobStatus::Timeout,
                format!("deadline expired in phase `{phase}`"),
            ),
            InsertionError::Cancelled => ExecOutcome::terminal(JobStatus::Cancelled, "cancelled"),
            other => ExecOutcome::terminal(JobStatus::Failed, other.to_string()),
        })
        .map_err(Box::new)
}

/// Digest of a set of infected designs: FNV over the written `.bench`
/// text of each, order-stable (insertion order is deterministic).
fn designs_digest(outcome: &InsertionOutcome) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325;
    for design in &outcome.infected {
        digest = fnv1a(digest, bench::write(&design.netlist).as_bytes());
    }
    digest
}

fn exec_insert(job: &JobSpec, circuit: &CompiledCircuit, budget: &RunBudget) -> ExecOutcome {
    let outcome = match insertion_outcome(job, circuit, budget) {
        Ok(o) => o,
        Err(terminal) => return *terminal,
    };
    let digest = designs_digest(&outcome);
    let mut out = ExecOutcome::done(Json::obj(vec![
        ("digest", Json::Str(format!("{digest:016x}"))),
        ("instances", Json::Num(outcome.infected.len() as f64)),
        ("rare_nodes", Json::Num(outcome.rare_nodes.len() as f64)),
        (
            "graph_vertices",
            Json::Num(outcome.graph_stats.vertices as f64),
        ),
        ("graph_edges", Json::Num(outcome.graph_stats.edges as f64)),
        ("cliques", Json::Num(outcome.graph_stats.cliques as f64)),
    ]));
    out.degradations = outcome.degradations;
    out.counters = vec![(
        "server.insert_instances".to_owned(),
        outcome.infected.len() as u64,
    )];
    out.phases = timing_phases(&outcome.timings);
    out
}

fn scheme_for(job: &JobSpec) -> Box<dyn DetectionScheme> {
    let p = &job.params;
    match p.scheme.as_str() {
        "mero" => Box::new(MeroDetection::new(p.tests, 2_500, p.seed)),
        "ndatpg" => Box::new(NdAtpgDetection::new(p.tests, p.seed)),
        // The parser admits exactly these three names.
        _ => Box::new(RandomDetection::new(p.tests, p.seed)),
    }
}

/// Times one grade/detect sub-phase, streaming enter/complete frames
/// and appending to the phases list.
fn timed_phase<T>(
    progress: &ProgressEmitter,
    phases: &mut Vec<(String, f64)>,
    name: &str,
    f: impl FnOnce() -> T,
) -> T {
    progress.phase_enter(name);
    let start = Instant::now();
    let value = f();
    let dur_ms = start.elapsed().as_secs_f64() * 1e3;
    progress.phase_complete(name, dur_ms);
    phases.push((name.to_owned(), dur_ms));
    value
}

fn exec_grade(
    job: &JobSpec,
    circuit: &CompiledCircuit,
    cache: &ProgramCache,
    budget: &RunBudget,
    progress: &ProgressEmitter,
) -> ExecOutcome {
    let p = &job.params;
    let mut phases = Vec::new();
    if let Err(e) = budget.check() {
        return ExecOutcome::budget(e);
    }
    let rare = match timed_phase(progress, &mut phases, "rare_profile", || {
        cache.rare_profile(circuit, p.theta, p.vectors, p.seed)
    }) {
        Ok(r) => r,
        Err(e) => return ExecOutcome::terminal(JobStatus::Failed, e),
    };
    let scheme = scheme_for(job);
    let tests = match timed_phase(progress, &mut phases, "test_generation", || {
        scheme.generate_tests(&circuit.comb, &rare)
    }) {
        Ok(t) => t,
        Err(e) => return ExecOutcome::terminal(JobStatus::Failed, e.to_string()),
    };
    if let Err(e) = budget.check() {
        return ExecOutcome::budget(e);
    }
    let report = match timed_phase(progress, &mut phases, "fault_simulation", || {
        let faults = all_faults(&circuit.comb);
        fault_simulate(&circuit.comb, &faults, &tests)
    }) {
        Ok(r) => r,
        Err(e) => return ExecOutcome::terminal(JobStatus::Failed, e.to_string()),
    };
    let mut out = ExecOutcome::done(Json::obj(vec![
        ("scheme", Json::Str(scheme.name().to_owned())),
        ("tests", Json::Num(tests.len() as f64)),
        ("faults", Json::Num(report.total() as f64)),
        ("detected", Json::Num(report.detected() as f64)),
        ("coverage_pct", Json::Num(report.coverage())),
    ]));
    out.counters = vec![("server.grade_tests".to_owned(), tests.len() as u64)];
    out.phases = phases;
    out
}

/// Self-contained insert-then-evaluate: inserts `instances` trojans and
/// grades the chosen detection scheme's TC/DC against them.
fn exec_detect(
    job: &JobSpec,
    circuit: &CompiledCircuit,
    cache: &ProgramCache,
    budget: &RunBudget,
    progress: &ProgressEmitter,
) -> ExecOutcome {
    let p = &job.params;
    let outcome = match insertion_outcome(job, circuit, budget) {
        Ok(o) => o,
        Err(terminal) => return *terminal,
    };
    let mut phases = timing_phases(&outcome.timings);
    if let Err(e) = budget.check() {
        return ExecOutcome::budget(e);
    }
    let rare = match timed_phase(progress, &mut phases, "rare_profile", || {
        cache.rare_profile(circuit, p.theta, p.vectors, p.seed)
    }) {
        Ok(r) => r,
        Err(e) => return ExecOutcome::terminal(JobStatus::Failed, e),
    };
    let scheme = scheme_for(job);
    let tests = match timed_phase(progress, &mut phases, "test_generation", || {
        scheme.generate_tests(&circuit.comb, &rare)
    }) {
        Ok(t) => t,
        Err(e) => return ExecOutcome::terminal(JobStatus::Failed, e.to_string()),
    };
    if let Err(e) = budget.check() {
        return ExecOutcome::budget(e);
    }
    let report = match timed_phase(progress, &mut phases, "evaluation", || {
        htforge_detect::evaluate_designs(&circuit.golden, &outcome.infected, &tests)
    }) {
        Ok(r) => r,
        Err(e) => return ExecOutcome::terminal(JobStatus::Failed, e.to_string()),
    };
    let digest = designs_digest(&outcome);
    let mut out = ExecOutcome::done(Json::obj(vec![
        ("digest", Json::Str(format!("{digest:016x}"))),
        ("scheme", Json::Str(scheme.name().to_owned())),
        ("instances", Json::Num(outcome.infected.len() as f64)),
        ("tests", Json::Num(tests.len() as f64)),
        ("triggered", Json::Num(report.triggered() as f64)),
        ("detected", Json::Num(report.detected() as f64)),
        ("trigger_coverage_pct", Json::Num(report.trigger_coverage())),
        (
            "detection_coverage_pct",
            Json::Num(report.detection_coverage()),
        ),
    ]));
    out.degradations = outcome.degradations;
    out.counters = vec![(
        "server.detect_instances".to_owned(),
        outcome.infected.len() as u64,
    )];
    out.phases = phases;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CircuitSource, JobParams};
    use htforge_obs::CancelToken;

    fn compiled(name: &str) -> (ProgramCache, std::sync::Arc<CompiledCircuit>) {
        let cache = ProgramCache::new();
        let (c, _) = cache
            .get_or_compile(&CircuitSource::Builtin(name.into()))
            .unwrap();
        (cache, c)
    }

    fn job(kind: JobKind, params: JobParams) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            id: "j".into(),
            kind,
            circuit: CircuitSource::Builtin("c17".into()),
            priority: 0,
            deadline_ms: None,
            params,
        }
    }

    #[test]
    fn simulate_digest_is_chunking_independent_and_deterministic() {
        let (cache, c17) = compiled("c17");
        let budget = RunBudget::unlimited();
        // 1 × 6000 and 3 × 2000 produce the same pattern stream (the
        // chunk seed derives from the global chunk index over the
        // repeat-expanded total), so the digests must coincide.
        let one = job(
            JobKind::Simulate,
            JobParams {
                vectors: 6000,
                ..JobParams::default()
            },
        );
        let repeated = job(
            JobKind::Simulate,
            JobParams {
                vectors: 2000,
                repeat: 3,
                ..JobParams::default()
            },
        );
        let a = execute(&one, &c17, &cache, &budget, &ProgressEmitter::disabled());
        let b = execute(
            &repeated,
            &c17,
            &cache,
            &budget,
            &ProgressEmitter::disabled(),
        );
        assert_eq!(a.status, JobStatus::Done);
        assert_eq!(
            a.result.as_ref().unwrap().get("digest"),
            b.result.as_ref().unwrap().get("digest")
        );
        let other_seed = job(
            JobKind::Simulate,
            JobParams {
                vectors: 6000,
                seed: 2,
                ..JobParams::default()
            },
        );
        let c = execute(
            &other_seed,
            &c17,
            &cache,
            &budget,
            &ProgressEmitter::disabled(),
        );
        assert_ne!(
            a.result.as_ref().unwrap().get("digest"),
            c.result.as_ref().unwrap().get("digest")
        );
    }

    #[test]
    fn cancelled_budget_yields_cancelled_status() {
        let (cache, c17) = compiled("c17");
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget::new(None, token);
        let spec = job(JobKind::Simulate, JobParams::default());
        let out = execute(&spec, &c17, &cache, &budget, &ProgressEmitter::disabled());
        assert_eq!(out.status, JobStatus::Cancelled);
        assert!(out.result.is_none());
    }

    #[test]
    fn grade_and_detect_report_coverage() {
        let (cache, c17) = compiled("c17");
        let budget = RunBudget::unlimited();
        let params = JobParams {
            vectors: 512,
            theta: 0.3,
            tests: 64,
            ..JobParams::default()
        };
        let g = execute(
            &job(JobKind::Grade, params.clone()),
            &c17,
            &cache,
            &budget,
            &ProgressEmitter::disabled(),
        );
        assert_eq!(g.status, JobStatus::Done, "{:?}", g.error);
        let result = g.result.unwrap();
        assert!(result.get("coverage_pct").unwrap().as_f64().unwrap() > 0.0);

        let d = execute(
            &job(JobKind::Detect, params),
            &c17,
            &cache,
            &budget,
            &ProgressEmitter::disabled(),
        );
        assert_eq!(d.status, JobStatus::Done, "{:?}", d.error);
        let result = d.result.unwrap();
        assert_eq!(result.get("instances").unwrap().as_f64(), Some(1.0));
        // Grade + detect shared one rare profile through the cache.
        assert_eq!(cache.stats().rare_misses, 1);
        assert!(cache.stats().rare_hits >= 1);
    }

    #[test]
    fn insert_is_deterministic_per_seed() {
        let (cache, c17) = compiled("c17");
        let budget = RunBudget::unlimited();
        let params = JobParams {
            vectors: 512,
            theta: 0.3,
            ..JobParams::default()
        };
        let spec = job(JobKind::Insert, params);
        let a = execute(&spec, &c17, &cache, &budget, &ProgressEmitter::disabled());
        let b = execute(&spec, &c17, &cache, &budget, &ProgressEmitter::disabled());
        assert_eq!(a.status, JobStatus::Done, "{:?}", a.error);
        assert_eq!(
            a.result.as_ref().unwrap().get("digest"),
            b.result.as_ref().unwrap().get("digest")
        );
    }
}
