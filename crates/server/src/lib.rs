//! `htforge-server` — the long-running multi-tenant campaign daemon.
//!
//! The rest of the workspace is one-shot: load a circuit, run a
//! pipeline, print a table. This crate turns it into a service
//! (`DESIGN.md` §10): a job queue speaking a versioned JSONL protocol
//! ([`protocol`]) over stdin/stdout or a Unix socket, multiplexing
//! `simulate`/`insert`/`grade`/`detect` jobs ([`exec`]) onto a worker
//! pool ([`core`]) with
//!
//! * a content-hash-keyed cache of compiled circuits ([`cache`]) so
//!   repeated jobs on the same netlist skip parsing and `SimProgram`
//!   compilation,
//! * per-job `RunBudget` + `CancelToken` admission control with
//!   priority/deadline scheduling,
//! * graceful shutdown that drains (or drops) the queue,
//! * per-job `htforge.run_report/v1` artifacts streamed inline with
//!   each terminal response, plus `server.*` counters and gauges,
//! * a crash-safe write-ahead job journal ([`journal`]) replayed on
//!   restart so accepted jobs survive a `SIGKILL` (at-least-once
//!   redelivery, deduplicated terminals), and
//! * per-tenant admission control (token-bucket rates, in-flight
//!   quotas, bounded queue) that sheds overload with structured
//!   `queue_full`/`rate_limit` rejections instead of dropping
//!   connections.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use htforge_server::{serve, ProgramCache, ServerConfig};
//!
//! let input = concat!(
//!     r#"{"schema":"htforge.job_request/v1","op":"submit","id":"j1","#,
//!     r#""kind":"simulate","circuit":"c17","params":{"vectors":256}}"#,
//!     "\n",
//! );
//! // EOF after one submit: the job drains, then the stream closes.
//! let summary = serve(
//!     input.as_bytes(),
//!     Vec::new(), // any `Write + Send` sink; the binary passes stdout
//!     ServerConfig { workers: 1, ..ServerConfig::default() },
//!     Arc::new(ProgramCache::new()),
//! ).unwrap();
//! assert_eq!(summary.stats.completed, 1);
//! ```

pub mod cache;
pub mod core;
pub mod exec;
pub mod journal;
pub mod progress;
pub mod protocol;
pub mod session;

pub use cache::{CacheStats, CompiledCircuit, ProgramCache};
pub use core::{
    AdmissionConfig, RecoveryInfo, Server, ServerConfig, SessionControl, StatsSnapshot,
};
pub use exec::{execute, ExecOutcome, SIM_CHUNK};
pub use journal::{
    archive_path, read_records, read_records_with_archive, FsyncPolicy, Journal, JournalConfig,
    JournalEvent, JournalStats, Recovery,
};
pub use progress::{ProgressEmitter, PIPELINE_PHASES};
pub use protocol::{
    parse_request, CircuitSource, JobKind, JobParams, JobProgress, JobResult, JobSpec, JobStatus,
    Request, RequestError, Response, REQUEST_SCHEMA, RESPONSE_SCHEMA,
};
pub use session::{
    serve, serve_cancellable, serve_unix_socket, serve_unix_socket_with, SessionSummary,
};
