//! The write-ahead job journal: crash-safe durability for accepted
//! jobs (`DESIGN.md` §10).
//!
//! Every job the server accepts is appended to an append-only segment
//! file as a length+checksum-framed `htforge.server_journal/v1` record
//! before the client sees the corresponding response line:
//!
//! ```text
//! [8-byte magic "HTFJRNL1"]
//! [u32 len LE][u32 fnv1a(payload) LE][payload: compact JSON]  × N
//! ```
//!
//! Three record kinds track the job lifecycle — `submit` (carries the
//! full wire-form spec, so replay reconstructs the job byte-for-byte),
//! `start`, and `terminal` (carries the status). On startup,
//! [`Journal::open`] replays the segment: a torn or corrupt tail —
//! short frame, checksum mismatch, unparseable payload — truncates the
//! file back to the last valid record (a crash mid-append must never
//! poison the whole journal), and every job with a `submit` but no
//! `terminal` comes back as pending for re-enqueue. Redelivery is
//! at-least-once; the server dedupes by `(tenant, id)` so the response
//! stream still carries exactly one terminal line per job.
//!
//! Fsync policy is configurable ([`FsyncPolicy`]): `always` fsyncs
//! every record (a crash loses nothing), `batch:N` fsyncs every N
//! appends (bounded loss window, much higher throughput — the
//! `durability` section of `BENCH_server.json` prices the gap), and
//! `never` leaves flushing to the OS. Rotation is atomic: when the
//! segment outgrows its bound, the live (non-terminal) jobs are
//! compacted into a temp file that is fsynced and renamed over the
//! segment, so a crash during rotation leaves either the old or the
//! new segment, never a hybrid. The pre-compaction segment survives as
//! a `.1` archive (see [`archive_path`]), so the terminal history a
//! compaction drops stays inspectable — [`read_records_with_archive`]
//! stitches archive + live segment back into the full campaign for
//! `--dump-journal`.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use htforge_obs::{Json, SERVER_JOURNAL_SCHEMA};

use crate::protocol::{fnv1a, parse_request, JobSpec, JobStatus, Request};

/// Magic prefix identifying a journal segment (versioned: a future
/// frame-format change bumps the trailing digit).
pub const JOURNAL_MAGIC: &[u8; 8] = b"HTFJRNL1";

/// Bytes of frame overhead per record (length + checksum).
const FRAME_HEADER: usize = 8;

/// Hard cap on one record's payload, so a corrupt length field cannot
/// make replay attempt a multi-gigabyte allocation.
const MAX_RECORD_BYTES: u32 = 64 << 20;

/// When to fsync the segment after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every record: a crash loses no accepted job.
    Always,
    /// Fsync every N appends: bounded loss window, batched cost.
    Batch(u32),
    /// Never fsync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never` or `batch:N` (CLI flag form).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => {
                let n = other
                    .strip_prefix("batch:")
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        format!("`{other}`: expected always, never or batch:<n> (n ≥ 1)")
                    })?;
                Ok(FsyncPolicy::Batch(n))
            }
        }
    }

    /// Wire/CLI name of the policy.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_owned(),
            FsyncPolicy::Batch(n) => format!("batch:{n}"),
            FsyncPolicy::Never => "never".to_owned(),
        }
    }
}

/// Journal tuning knobs.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Segment file path (created if absent, replayed if present).
    pub path: PathBuf,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Rotate (compact live jobs into a fresh segment) once the file
    /// exceeds this many bytes; `0` disables rotation.
    pub rotate_bytes: u64,
}

impl JournalConfig {
    /// Defaults: batched fsync (64 records), 8 MiB rotation bound.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JournalConfig {
            path: path.into(),
            fsync: FsyncPolicy::Batch(64),
            rotate_bytes: 8 << 20,
        }
    }
}

/// One journal record (the decoded payload of one frame).
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A job was accepted; carries the full spec for replay.
    Submit(Box<JobSpec>),
    /// A worker picked the job up.
    Start {
        /// Tenant of the job.
        tenant: String,
        /// Job id.
        id: String,
    },
    /// The job reached its terminal response.
    Terminal {
        /// Tenant of the job.
        tenant: String,
        /// Job id.
        id: String,
        /// Terminal verdict.
        status: JobStatus,
    },
}

impl JournalEvent {
    /// The `(tenant, id)` key of the job the record concerns.
    #[must_use]
    pub fn key(&self) -> (String, String) {
        match self {
            JournalEvent::Submit(spec) => spec.key(),
            JournalEvent::Start { tenant, id } | JournalEvent::Terminal { tenant, id, .. } => {
                (tenant.clone(), id.clone())
            }
        }
    }

    /// Encodes the record as a schema-tagged
    /// `htforge.server_journal/v1` document (`obs_validate` checks
    /// dumps of these).
    #[must_use]
    pub fn to_json(&self, seq: u64) -> Json {
        let at_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        let mut fields = vec![
            ("schema", Json::Str(SERVER_JOURNAL_SCHEMA.to_owned())),
            ("seq", Json::Num(seq as f64)),
            ("at_ms", Json::Num(at_ms)),
        ];
        match self {
            JournalEvent::Submit(spec) => {
                fields.push(("event", Json::Str("submit".into())));
                fields.push(("tenant", Json::Str(spec.tenant.clone())));
                fields.push(("id", Json::Str(spec.id.clone())));
                fields.push((
                    "spec",
                    Request::Submit(Box::new((**spec).clone())).to_json(),
                ));
            }
            JournalEvent::Start { tenant, id } => {
                fields.push(("event", Json::Str("start".into())));
                fields.push(("tenant", Json::Str(tenant.clone())));
                fields.push(("id", Json::Str(id.clone())));
            }
            JournalEvent::Terminal { tenant, id, status } => {
                fields.push(("event", Json::Str("terminal".into())));
                fields.push(("tenant", Json::Str(tenant.clone())));
                fields.push(("id", Json::Str(id.clone())));
                fields.push(("status", Json::Str(status.as_str().into())));
            }
        }
        Json::obj(fields)
    }

    /// Decodes a record payload document.
    ///
    /// # Errors
    ///
    /// Returns a description of the structural violation; replay treats
    /// any error as a corrupt tail.
    pub fn from_json(doc: &Json) -> Result<JournalEvent, String> {
        htforge_obs::validate_server_journal(doc)?;
        let text = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .unwrap_or_default()
        };
        match doc.get("event").and_then(Json::as_str) {
            Some("submit") => {
                let spec_doc = doc.get("spec").ok_or("submit record missing `spec`")?;
                match parse_request(&spec_doc.compact()) {
                    Ok(Request::Submit(spec)) => Ok(JournalEvent::Submit(spec)),
                    Ok(_) => Err("journal `spec` is not a submit request".into()),
                    Err(e) => Err(format!("journal `spec`: {}", e.error)),
                }
            }
            Some("start") => Ok(JournalEvent::Start {
                tenant: text("tenant"),
                id: text("id"),
            }),
            Some("terminal") => {
                let status = doc
                    .get("status")
                    .and_then(Json::as_str)
                    .and_then(JobStatus::parse)
                    .ok_or("terminal record missing a valid `status`")?;
                Ok(JournalEvent::Terminal {
                    tenant: text("tenant"),
                    id: text("id"),
                    status,
                })
            }
            _ => Err("unknown journal event".into()),
        }
    }
}

/// Frames one payload: `[u32 len][u32 checksum][payload]`.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&(checksum(payload)).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Low 32 bits of FNV-1a over the payload (the same digest the cache
/// keys and result digests use — stable across platforms and runs).
fn checksum(payload: &[u8]) -> u32 {
    (fnv1a(0xcbf2_9ce4_8422_2325, payload) & 0xffff_ffff) as u32
}

/// Decodes every valid frame from `bytes` (which excludes the magic),
/// returning `(payload document, byte offset just past the frame)`
/// pairs. Decoding stops at the first short frame, checksum mismatch,
/// or undecodable payload — everything from there on is a torn/corrupt
/// tail.
fn decode_frames(bytes: &[u8]) -> Vec<(Json, usize)> {
    let mut docs = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let sum = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            break;
        }
        let len = len as usize;
        let Some(end) = at.checked_add(FRAME_HEADER + len) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[at + FRAME_HEADER..end];
        if checksum(payload) != sum {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(doc) = htforge_obs::parse_json(text) else {
            break;
        };
        docs.push((doc, end));
        at = end;
    }
    docs
}

/// Reads and decodes a journal segment without opening it for writing
/// (the `--dump-journal` CLI mode and the crash-recovery tests).
/// Returns the decoded payload documents and how many trailing bytes
/// were unreadable (torn/corrupt tail; `0` for a clean segment).
///
/// # Errors
///
/// Propagates I/O errors reading the file.
pub fn read_records(path: &Path) -> io::Result<(Vec<Json>, u64)> {
    read_segment(path)
}

/// The sibling path holding the pre-compaction archive of a rotated
/// segment (`<segment>.1`).
#[must_use]
pub fn archive_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".1");
    PathBuf::from(os)
}

/// Reads a segment *and* its `.1` pre-compaction archive (if one
/// exists), archive records first, so `--dump-journal` reconstructs
/// the full campaign history across a rotation instead of only the
/// live jobs the compaction kept. Returns the decoded payloads and the
/// total unreadable tail bytes across both files.
///
/// # Errors
///
/// Propagates I/O errors reading the live segment (a missing or
/// unreadable archive is skipped, not an error).
pub fn read_records_with_archive(path: &Path) -> io::Result<(Vec<Json>, u64)> {
    let (mut docs, mut torn) = read_segment(&archive_path(path)).unwrap_or_default();
    let (live, live_torn) = read_segment(path)?;
    docs.extend(live);
    torn += live_torn;
    Ok((docs, torn))
}

fn read_segment(path: &Path) -> io::Result<(Vec<Json>, u64)> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        // Not a journal (or a torn header): everything is tail.
        return Ok((Vec::new(), bytes.len() as u64));
    }
    let body = &bytes[JOURNAL_MAGIC.len()..];
    let frames = decode_frames(body);
    let valid = frames.last().map_or(0, |(_, end)| *end);
    let docs = frames.into_iter().map(|(doc, _)| doc).collect();
    Ok((docs, (body.len() - valid) as u64))
}

/// What replaying a segment found.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Jobs accepted but never terminal, in original submit order;
    /// the server re-enqueues these.
    pub pending: Vec<JobSpec>,
    /// Valid records replayed.
    pub replayed_records: u64,
    /// Terminal records among them (jobs that fully completed).
    pub terminal_records: u64,
    /// Bytes truncated off a torn/corrupt tail.
    pub truncated_bytes: u64,
    /// Wall-clock replay duration.
    pub recovery_ms: f64,
}

/// Per-journal monotonic counters (mirrored into `server.journal_*`
/// obs counters by the core; exposed directly for tests and metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since open.
    pub appends: u64,
    /// Explicit fsyncs issued.
    pub fsyncs: u64,
    /// Compacting rotations performed.
    pub rotations: u64,
}

struct LiveJob {
    spec: JobSpec,
    started: bool,
}

/// An open write-ahead journal segment.
pub struct Journal {
    file: File,
    cfg: JournalConfig,
    /// Current segment size in bytes (including the magic).
    bytes: u64,
    /// Monotonic record sequence (survives rotation).
    seq: u64,
    unsynced: u32,
    /// Accepted-but-not-terminal jobs, in submit order; rotation
    /// compacts the segment down to exactly these.
    live: Vec<((String, String), LiveJob)>,
    stats: JournalStats,
}

impl Journal {
    /// Opens (or creates) the segment at `cfg.path`, replaying any
    /// existing records. A torn or corrupt tail is truncated off —
    /// the returned [`Recovery`] counts the dropped bytes — and jobs
    /// without a terminal record come back as `pending`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening, reading or truncating the file.
    pub fn open(cfg: JournalConfig) -> io::Result<(Journal, Recovery)> {
        let t0 = Instant::now();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&cfg.path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovery = Recovery::default();
        let mut live: Vec<((String, String), LiveJob)> = Vec::new();
        let mut seq = 0u64;
        let valid_len = if bytes.is_empty() {
            file.write_all(JOURNAL_MAGIC)?;
            JOURNAL_MAGIC.len() as u64
        } else if bytes.len() < JOURNAL_MAGIC.len()
            || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC
        {
            // Wrong magic (torn header or foreign file): rewrite from
            // scratch rather than appending frames nothing can replay.
            recovery.truncated_bytes = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(JOURNAL_MAGIC)?;
            JOURNAL_MAGIC.len() as u64
        } else {
            let body = &bytes[JOURNAL_MAGIC.len()..];
            let frames = decode_frames(body);
            let mut valid = 0usize;
            // Terminal state per key, applied in record order; the
            // valid prefix ends at the last record that also decodes
            // semantically (structurally framed but unparseable
            // events are tail too).
            for (doc, end) in &frames {
                let event = match JournalEvent::from_json(doc) {
                    Ok(e) => e,
                    Err(_) => break,
                };
                valid = *end;
                recovery.replayed_records += 1;
                seq = seq.max(doc.get("seq").and_then(Json::as_u64).unwrap_or(0));
                match event {
                    JournalEvent::Submit(spec) => {
                        let key = spec.key();
                        if !live.iter().any(|(k, _)| *k == key) {
                            live.push((
                                key,
                                LiveJob {
                                    spec: *spec,
                                    started: false,
                                },
                            ));
                        }
                    }
                    JournalEvent::Start { tenant, id } => {
                        let key = (tenant, id);
                        if let Some((_, job)) = live.iter_mut().find(|(k, _)| *k == key) {
                            job.started = true;
                        }
                    }
                    JournalEvent::Terminal { tenant, id, .. } => {
                        let key = (tenant, id);
                        live.retain(|(k, _)| *k != key);
                        recovery.terminal_records += 1;
                    }
                }
            }
            let valid_total = (JOURNAL_MAGIC.len() + valid) as u64;
            if valid_total < bytes.len() as u64 {
                recovery.truncated_bytes = bytes.len() as u64 - valid_total;
                file.set_len(valid_total)?;
            }
            file.seek(SeekFrom::End(0))?;
            valid_total
        };

        recovery.pending = live.iter().map(|(_, job)| job.spec.clone()).collect();
        recovery.recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok((
            Journal {
                file,
                cfg,
                bytes: valid_len,
                seq,
                unsynced: 0,
                live,
                stats: JournalStats::default(),
            },
            recovery,
        ))
    }

    /// Opens a fresh (truncated) segment, discarding any prior
    /// contents — the replay-failure fallback: availability over a
    /// journal nothing can decode.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the file.
    pub fn open_fresh(cfg: JournalConfig) -> io::Result<Journal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&cfg.path)?;
        file.write_all(JOURNAL_MAGIC)?;
        Ok(Journal {
            file,
            cfg,
            bytes: JOURNAL_MAGIC.len() as u64,
            seq: 0,
            unsynced: 0,
            live: Vec::new(),
            stats: JournalStats::default(),
        })
    }

    /// Appends one record, honoring the fsync policy, and rotates the
    /// segment when it outgrows its bound.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the caller (the server core) degrades to
    /// non-durable operation and counts the failure, it never drops
    /// the job.
    pub fn append(&mut self, event: &JournalEvent) -> io::Result<()> {
        self.seq += 1;
        let payload = event.to_json(self.seq).compact();
        let frame = encode_frame(payload.as_bytes());
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.stats.appends += 1;
        self.track_live(event);
        self.unsynced += 1;
        let sync_now = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if sync_now {
            self.sync()?;
        }
        if self.cfg.rotate_bytes > 0 && self.bytes > self.cfg.rotate_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn track_live(&mut self, event: &JournalEvent) {
        match event {
            JournalEvent::Submit(spec) => {
                let key = spec.key();
                if !self.live.iter().any(|(k, _)| *k == key) {
                    self.live.push((
                        key,
                        LiveJob {
                            spec: (**spec).clone(),
                            started: false,
                        },
                    ));
                }
            }
            JournalEvent::Start { tenant, id } => {
                let key = (tenant.clone(), id.clone());
                if let Some((_, job)) = self.live.iter_mut().find(|(k, _)| *k == key) {
                    job.started = true;
                }
            }
            JournalEvent::Terminal { tenant, id, .. } => {
                let key = (tenant.clone(), id.clone());
                self.live.retain(|(k, _)| *k != key);
            }
        }
    }

    /// Fsyncs the segment regardless of policy (shutdown drain, and
    /// batched-policy flushes).
    ///
    /// # Errors
    ///
    /// Propagates the fsync error.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Compacts the segment down to the live (non-terminal) jobs:
    /// write a temp segment, fsync it, atomically rename it over the
    /// live path. A crash at any point leaves one intact segment.
    ///
    /// Before the rename, the pre-compaction segment is preserved as a
    /// `.1` archive (hard-linked first, so a crash between the two
    /// steps leaves the history intact alongside whichever segment
    /// survives) — compaction discards terminal records from the live
    /// segment, and the archive is what lets `--dump-journal`
    /// reconstruct the full campaign afterwards. Archiving is best
    /// effort: on filesystems without hard links it falls back to a
    /// copy, and an archive failure never blocks the rotation itself.
    fn rotate(&mut self) -> io::Result<()> {
        let tmp_path = self.cfg.path.with_extension("rotate.tmp");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(JOURNAL_MAGIC)?;
        let mut bytes = JOURNAL_MAGIC.len() as u64;
        let mut seq = self.seq;
        // Re-emit submit (+ start) records for live jobs only; their
        // original payloads are regenerated, not byte-copied, so a
        // rotation is also a format self-heal.
        let mut frames = Vec::new();
        for (key, job) in &self.live {
            seq += 1;
            frames.push(
                JournalEvent::Submit(Box::new(job.spec.clone()))
                    .to_json(seq)
                    .compact(),
            );
            if job.started {
                seq += 1;
                frames.push(
                    JournalEvent::Start {
                        tenant: key.0.clone(),
                        id: key.1.clone(),
                    }
                    .to_json(seq)
                    .compact(),
                );
            }
        }
        for payload in frames {
            let frame = encode_frame(payload.as_bytes());
            tmp.write_all(&frame)?;
            bytes += frame.len() as u64;
        }
        tmp.sync_data()?;
        let archive = archive_path(&self.cfg.path);
        let _ = std::fs::remove_file(&archive);
        let archived = std::fs::hard_link(&self.cfg.path, &archive)
            .or_else(|_| std::fs::copy(&self.cfg.path, &archive).map(|_| ()));
        if archived.is_ok() {
            htforge_obs::counter("server.journal_rotations_archived").incr();
        } else {
            htforge_obs::counter("server.journal_archive_errors").incr();
        }
        std::fs::rename(&tmp_path, &self.cfg.path)?;
        self.file = tmp;
        self.bytes = bytes;
        self.seq = seq;
        self.unsynced = 0;
        self.stats.rotations += 1;
        Ok(())
    }

    /// Accepted-but-not-terminal jobs currently tracked.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Current segment size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// Monotonic journal counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// The fsync policy in force.
    #[must_use]
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.cfg.fsync
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CircuitSource, JobKind, JobParams};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "htforge-journal-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            id: id.into(),
            kind: JobKind::Simulate,
            circuit: CircuitSource::Builtin("c17".into()),
            priority: 0,
            deadline_ms: None,
            params: JobParams::default(),
        }
    }

    fn cfg(path: &Path) -> JournalConfig {
        JournalConfig {
            path: path.to_path_buf(),
            fsync: FsyncPolicy::Never,
            rotate_bytes: 0,
        }
    }

    #[test]
    fn fsync_policy_parses_and_labels() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("batch:8"), Ok(FsyncPolicy::Batch(8)));
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Batch(8).label(), "batch:8");
    }

    #[test]
    fn records_round_trip_and_validate() {
        let events = [
            JournalEvent::Submit(Box::new(spec("a"))),
            JournalEvent::Start {
                tenant: "t".into(),
                id: "a".into(),
            },
            JournalEvent::Terminal {
                tenant: "t".into(),
                id: "a".into(),
                status: JobStatus::Done,
            },
        ];
        for (i, event) in events.iter().enumerate() {
            let doc = event.to_json(i as u64 + 1);
            htforge_obs::validate_server_journal(&doc).unwrap();
            assert_eq!(&JournalEvent::from_json(&doc).unwrap(), event);
        }
    }

    #[test]
    fn replay_reports_pending_jobs_and_dedupes_terminals() {
        let path = temp_path("replay");
        {
            let (mut j, r) = Journal::open(cfg(&path)).unwrap();
            assert!(r.pending.is_empty());
            j.append(&JournalEvent::Submit(Box::new(spec("a"))))
                .unwrap();
            j.append(&JournalEvent::Submit(Box::new(spec("b"))))
                .unwrap();
            j.append(&JournalEvent::Start {
                tenant: "t".into(),
                id: "a".into(),
            })
            .unwrap();
            j.append(&JournalEvent::Terminal {
                tenant: "t".into(),
                id: "a".into(),
                status: JobStatus::Done,
            })
            .unwrap();
            assert_eq!(j.pending(), 1);
        }
        let (j, r) = Journal::open(cfg(&path)).unwrap();
        assert_eq!(r.replayed_records, 4);
        assert_eq!(r.terminal_records, 1);
        assert_eq!(r.truncated_bytes, 0);
        assert_eq!(r.pending.len(), 1);
        assert_eq!(r.pending[0].id, "b");
        assert_eq!(j.pending(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let path = temp_path("torn");
        {
            let (mut j, _) = Journal::open(cfg(&path)).unwrap();
            j.append(&JournalEvent::Submit(Box::new(spec("a"))))
                .unwrap();
            j.append(&JournalEvent::Submit(Box::new(spec("b"))))
                .unwrap();
        }
        // Tear the tail: chop off the last 7 bytes of the segment.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (_, r) = Journal::open(cfg(&path)).unwrap();
        assert_eq!(r.replayed_records, 1);
        assert_eq!(r.pending.len(), 1);
        assert_eq!(r.pending[0].id, "a");
        assert!(r.truncated_bytes > 0);
        // The truncation is persistent: a second replay is clean.
        let (_, r2) = Journal::open(cfg(&path)).unwrap();
        assert_eq!(r2.truncated_bytes, 0);
        assert_eq!(r2.replayed_records, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_reset_not_replayed() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"this is not a journal at all").unwrap();
        let (mut j, r) = Journal::open(cfg(&path)).unwrap();
        assert_eq!(r.replayed_records, 0);
        assert!(r.pending.is_empty());
        assert_eq!(r.truncated_bytes, 28);
        // And the reset segment accepts appends + replays cleanly.
        j.append(&JournalEvent::Submit(Box::new(spec("x"))))
            .unwrap();
        drop(j);
        let (_, r2) = Journal::open(cfg(&path)).unwrap();
        assert_eq!(r2.pending.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_compacts_to_live_jobs_and_survives_replay() {
        let path = temp_path("rotate");
        let mut c = cfg(&path);
        c.rotate_bytes = 2048;
        let (mut j, _) = Journal::open(c.clone()).unwrap();
        // Churn enough submit/terminal pairs to cross the bound
        // several times, keeping one live straggler.
        j.append(&JournalEvent::Submit(Box::new(spec("live"))))
            .unwrap();
        for i in 0..64 {
            let id = format!("done-{i}");
            j.append(&JournalEvent::Submit(Box::new(spec(&id))))
                .unwrap();
            j.append(&JournalEvent::Terminal {
                tenant: "t".into(),
                id,
                status: JobStatus::Done,
            })
            .unwrap();
        }
        assert!(j.stats().rotations > 0, "rotation never triggered");
        assert!(j.size_bytes() <= 2048 + 1024, "segment did not compact");
        drop(j);
        let (_, r) = Journal::open(c).unwrap();
        assert_eq!(r.pending.len(), 1);
        assert_eq!(r.pending[0].id, "live");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_records_dumps_schema_valid_payloads() {
        let path = temp_path("dump");
        {
            let (mut j, _) = Journal::open(cfg(&path)).unwrap();
            j.append(&JournalEvent::Submit(Box::new(spec("a"))))
                .unwrap();
            j.append(&JournalEvent::Terminal {
                tenant: "t".into(),
                id: "a".into(),
                status: JobStatus::Failed,
            })
            .unwrap();
        }
        let (docs, torn) = read_records(&path).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(docs.len(), 2);
        for doc in &docs {
            htforge_obs::validate_server_journal(doc).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
