//! Oracle tests: PODEM against brute-force enumeration on small random
//! circuits. For every fault, PODEM's verdict (testable/untestable) and
//! any produced cube must agree with exhaustive ground truth.

use proptest::prelude::*;

use htforge_atpg::{Fault, Podem, PodemConfig, TestResult};
use htforge_netlist::{GateKind, Netlist, NodeId};
use htforge_sim::simulator::BoundSimulator;
use htforge_sim::PatternSet;

/// Builds a random small combinational netlist from a byte script
/// (deterministic in the input bytes — proptest shrinks nicely).
fn build_random_netlist(num_inputs: usize, script: &[u8]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NodeId> = (0..num_inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    for (k, chunk) in script.chunks(3).enumerate() {
        if chunk.len() < 3 {
            break;
        }
        let kind = GateKind::ALL[(chunk[0] % 8) as usize];
        let a = pool[(chunk[1] as usize) % pool.len()];
        let b = pool[(chunk[2] as usize) % pool.len()];
        let fanins = if kind.is_unary() || a == b {
            vec![a]
        } else {
            vec![a, b]
        };
        let id = nl
            .add_gate(format!("g{k}"), kind, fanins)
            .expect("fresh name");
        pool.push(id);
    }
    // Last two signals become outputs (ensures some observability).
    let n = pool.len();
    nl.mark_output(pool[n - 1]);
    if n >= 2 {
        nl.mark_output(pool[n - 2]);
    }
    nl
}

/// Ground truth by exhaustive simulation: is there an input vector that
/// excites `fault` (good value = excitation value) and, in detect mode,
/// propagates the fault effect to an output?
fn exhaustive_verdict(nl: &Netlist, fault: Fault, detect: bool) -> bool {
    let num_inputs = nl.inputs().len();
    assert!(num_inputs <= 12, "exhaustive check limited to 12 inputs");
    let sim = BoundSimulator::new(nl).expect("valid");
    let total = 1usize << num_inputs;
    let vectors: Vec<Vec<bool>> = (0..total)
        .map(|p| (0..num_inputs).map(|i| (p >> i) & 1 == 1).collect())
        .collect();
    let ps = PatternSet::from_vectors(num_inputs, &vectors);
    let good = sim.run(&ps);

    // Faulty circuit: rebuild with the node's function replaced by the
    // stuck value, simulated via a scalar pass.
    let order = htforge_netlist::graph::topo_order(nl).expect("acyclic");
    for (p, vector) in vectors.iter().enumerate() {
        if good.value(fault.node(), p) != fault.excitation_value() {
            continue;
        }
        if !detect {
            return true;
        }
        // Scalar faulty simulation for pattern p.
        let mut vals = vec![false; nl.node_count()];
        for (pos, &input) in nl.inputs().iter().enumerate() {
            vals[input.index()] = vector[pos];
        }
        for &id in &order {
            if let htforge_netlist::NodeKind::Gate(kind) = nl.node(id).kind() {
                let ins: Vec<bool> = nl
                    .node(id)
                    .fanins()
                    .iter()
                    .map(|f| vals[f.index()])
                    .collect();
                vals[id.index()] = kind.eval_bool(&ins);
            }
            if id == fault.node() {
                vals[id.index()] = fault.stuck_value();
            }
        }
        if nl
            .outputs()
            .iter()
            .any(|&o| vals[o.index()] != good.value(o, p))
        {
            return true;
        }
    }
    false
}

/// Checks that a PODEM cube really achieves the objective, by filling
/// don't-cares both ways and simulating.
fn cube_achieves(nl: &Netlist, cube: &htforge_atpg::Cube, fault: Fault, detect: bool) -> bool {
    for fill in [false, true] {
        let v = cube.fill_with(fill);
        let sim = BoundSimulator::new(nl).expect("valid");
        let ps = PatternSet::from_vectors(nl.inputs().len(), std::slice::from_ref(&v));
        let good = sim.run(&ps);
        if good.value(fault.node(), 0) != fault.excitation_value() {
            return false;
        }
        if detect {
            // Scalar faulty simulation.
            let order = htforge_netlist::graph::topo_order(nl).expect("acyclic");
            let mut vals = vec![false; nl.node_count()];
            for (pos, &input) in nl.inputs().iter().enumerate() {
                vals[input.index()] = v[pos];
            }
            for &id in &order {
                if let htforge_netlist::NodeKind::Gate(kind) = nl.node(id).kind() {
                    let ins: Vec<bool> = nl
                        .node(id)
                        .fanins()
                        .iter()
                        .map(|f| vals[f.index()])
                        .collect();
                    vals[id.index()] = kind.eval_bool(&ins);
                }
                if id == fault.node() {
                    vals[id.index()] = fault.stuck_value();
                }
            }
            let differs = nl
                .outputs()
                .iter()
                .any(|&o| vals[o.index()] != good.value(o, 0));
            if !differs {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In detect mode, PODEM's testable/untestable verdicts match
    /// exhaustive ground truth, and every cube is a genuine test.
    #[test]
    fn podem_detect_matches_exhaustive(
        num_inputs in 2usize..6,
        script in proptest::collection::vec(any::<u8>(), 9..45),
    ) {
        let nl = build_random_netlist(num_inputs, &script);
        let mut podem = Podem::new(&nl, PodemConfig::default()).expect("valid");
        for id in nl.node_ids() {
            for stuck in [false, true] {
                let fault = Fault::stuck_at(id, stuck);
                let truth = exhaustive_verdict(&nl, fault, true);
                match podem.generate(fault) {
                    TestResult::Test(cube) => {
                        prop_assert!(truth, "PODEM found a test for untestable {fault}");
                        prop_assert!(
                            cube_achieves(&nl, &cube, fault, true),
                            "bogus cube {cube} for {fault}"
                        );
                    }
                    TestResult::Untestable => {
                        prop_assert!(!truth, "PODEM missed a test for {fault}");
                    }
                    TestResult::Aborted | TestResult::TimedOut => {
                        // Legal but should not happen at this size (and
                        // no time budget is configured).
                        prop_assert!(false, "abort on a {num_inputs}-input circuit");
                    }
                }
            }
        }
    }

    /// In justify mode, the verdict matches "some input vector sets the
    /// node to the excitation value".
    #[test]
    fn podem_justify_matches_exhaustive(
        num_inputs in 2usize..6,
        script in proptest::collection::vec(any::<u8>(), 9..45),
    ) {
        let nl = build_random_netlist(num_inputs, &script);
        let mut podem = Podem::new(&nl, PodemConfig::justify()).expect("valid");
        for id in nl.node_ids() {
            for stuck in [false, true] {
                let fault = Fault::stuck_at(id, stuck);
                let truth = exhaustive_verdict(&nl, fault, false);
                match podem.generate(fault) {
                    TestResult::Test(cube) => {
                        prop_assert!(truth);
                        prop_assert!(cube_achieves(&nl, &cube, fault, false));
                    }
                    TestResult::Untestable => prop_assert!(!truth),
                    TestResult::Aborted | TestResult::TimedOut => {
                        prop_assert!(false, "abort at toy size");
                    }
                }
            }
        }
    }
}
