//! PODEM-based automatic test-pattern generation (ATPG) for `htforge`.
//!
//! The paper's compatibility graph (§III-C) is built from stuck-at test
//! cubes: for each rare node `n` with rare value `r`, PODEM [Goel 1981]
//! generates a test cube for the `n` stuck-at-`r̄` fault; two rare nodes
//! are *compatible* iff their cubes have no conflicting care bits. This
//! crate supplies that machinery:
//!
//! * [`fault`] — stuck-at fault model,
//! * [`cube`] — partial input assignments (test cubes) with conflict
//!   checking and merging,
//! * [`podem`] — the PODEM engine (justify-only and full-detect modes),
//! * [`ndetect`] — up-to-N distinct cubes per fault (the ND-ATPG
//!   detection scheme's primitive),
//! * [`fault_sim`] — bit-parallel stuck-at fault simulation for grading
//!   test sets.
//!
//! # Examples
//!
//! ```
//! use htforge_atpg::{Fault, Podem, PodemConfig, TestResult};
//! use htforge_netlist::bench;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = bench::parse(
//!     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
//! let mut podem = Podem::new(&nl, PodemConfig::default())?;
//! let y = nl.find("y").unwrap();
//! // Test for y stuck-at-0: must set y = 1, i.e. a = b = 1.
//! match podem.generate(Fault::stuck_at(y, false)) {
//!     TestResult::Test(cube) => assert_eq!(cube.care_count(), 2),
//!     other => panic!("expected a test, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

pub mod cube;
pub mod fault;
pub mod fault_sim;
pub mod ndetect;
pub mod podem;

pub use cube::Cube;
pub use fault::Fault;
pub use fault_sim::{all_faults, fault_simulate, FaultSimReport};
pub use ndetect::n_detect_cubes;
pub use podem::{Podem, PodemConfig, PodemMode, TestResult};
