//! The single stuck-at fault model.

use std::fmt;

use htforge_netlist::netlist::NodeId;

/// A single stuck-at fault: node `node` permanently at `stuck_at`.
///
/// The paper converts each *rare event* (rare node `n` at rare value `r`)
/// into the stuck-at-`r̄` fault at `n`, so that any test for the fault
/// drives `n` to `r` (§III-C; also the ND-ATPG detection scheme).
///
/// # Examples
///
/// ```
/// use htforge_atpg::Fault;
/// use htforge_netlist::netlist::NodeId;
///
/// let n = NodeId::from_index(3);
/// let f = Fault::for_rare_event(n, true); // rare value 1 → stuck-at-0
/// assert_eq!(f.stuck_value(), false);
/// assert_eq!(f.excitation_value(), true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    node: NodeId,
    stuck_at: bool,
}

impl Fault {
    /// The fault `node` stuck-at-`value`.
    #[must_use]
    pub fn stuck_at(node: NodeId, value: bool) -> Self {
        Fault {
            node,
            stuck_at: value,
        }
    }

    /// The fault whose test drives `node` to `rare_value`
    /// (i.e. `node` stuck-at-`!rare_value`).
    #[must_use]
    pub fn for_rare_event(node: NodeId, rare_value: bool) -> Self {
        Fault {
            node,
            stuck_at: !rare_value,
        }
    }

    /// The faulty node.
    #[must_use]
    pub fn node(self) -> NodeId {
        self.node
    }

    /// The stuck value.
    ///
    /// Named `stuck_at` would clash with the constructor; kept as a getter
    /// for symmetry with [`Fault::excitation_value`].
    #[must_use]
    pub fn stuck_value(self) -> bool {
        self.stuck_at
    }

    /// The good-circuit value required at the fault site to excite the
    /// fault (the complement of the stuck value).
    #[must_use]
    pub fn excitation_value(self) -> bool {
        !self.stuck_at
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s-a-{}", self.node, if self.stuck_at { 1 } else { 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_event_conversion() {
        let n = NodeId::from_index(7);
        let f1 = Fault::for_rare_event(n, true);
        assert!(!f1.stuck_value());
        assert!(f1.excitation_value());
        let f0 = Fault::for_rare_event(n, false);
        assert!(f0.stuck_value());
        assert!(!f0.excitation_value());
    }

    #[test]
    fn display() {
        let f = Fault::stuck_at(NodeId::from_index(2), true);
        assert_eq!(f.to_string(), "n2 s-a-1");
    }
}
