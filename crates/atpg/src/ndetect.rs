//! N-detect cube generation: up to `N` *distinct* test cubes per fault.
//!
//! The ND-ATPG detection scheme (Jayasena & Mishra, TCAD 2023) converts
//! every rare event into a stuck-at fault and asks ATPG for `N` different
//! tests, so each rare node is driven to its rare value `N` times. The
//! cube diversity comes from re-running PODEM with randomized backtrace
//! input selection under different seeds.

use crate::cube::Cube;
use crate::fault::Fault;
use crate::podem::{Podem, PodemConfig, TestResult};

use htforge_netlist::{Netlist, NetlistError};

/// Generates up to `n` distinct cubes testing `fault` on `nl`.
///
/// Cubes are deduplicated exactly (same care bits in the same positions).
/// Fewer than `n` cubes are returned when the fault admits fewer distinct
/// PODEM outcomes within the attempt budget (`4 * n` randomized runs plus
/// one deterministic run), or none at all when the fault is untestable.
///
/// # Errors
///
/// Propagates netlist errors from engine construction (cyclic or
/// sequential netlists).
///
/// # Examples
///
/// ```
/// use htforge_atpg::{n_detect_cubes, Fault, PodemConfig};
/// use htforge_netlist::bench;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = bench::parse(
///     "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = OR(a, b, c)\n", "t")?;
/// let y = nl.find("y").unwrap();
/// let cubes = n_detect_cubes(
///     &nl, Fault::stuck_at(y, true), 3, PodemConfig::default(), 99)?;
/// assert!(!cubes.is_empty() && cubes.len() <= 3);
/// # Ok(())
/// # }
/// ```
pub fn n_detect_cubes(
    nl: &Netlist,
    fault: Fault,
    n: usize,
    base_config: PodemConfig,
    seed: u64,
) -> Result<Vec<Cube>, NetlistError> {
    let mut cubes: Vec<Cube> = Vec::new();
    if n == 0 {
        return Ok(cubes);
    }

    // Deterministic first run: the SCOAP-guided cube.
    let mut det = Podem::new(
        nl,
        PodemConfig {
            random_seed: None,
            ..base_config
        },
    )?;
    match det.generate(fault) {
        TestResult::Test(cube) => cubes.push(cube),
        TestResult::Untestable => return Ok(cubes),
        TestResult::Aborted | TestResult::TimedOut => {}
    }

    let attempts = 4 * n;
    for k in 0..attempts {
        if cubes.len() >= n {
            break;
        }
        let cfg = PodemConfig {
            random_seed: Some(
                seed.wrapping_add(k as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            ..base_config
        };
        let mut podem = Podem::new(nl, cfg)?;
        if let TestResult::Test(cube) = podem.generate(fault) {
            if !cubes.contains(&cube) {
                cubes.push(cube);
            }
        }
    }
    Ok(cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;
    use htforge_sim::tri::justifies;
    use htforge_sim::Tri;

    #[test]
    fn distinct_cubes_for_or_gate() {
        // y s-a-1 needs all inputs 0 — only one cube exists.
        // y s-a-0 needs any input 1 — several distinct cubes exist.
        let nl = bench::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = OR(a, b, c)\n",
            "t",
        )
        .unwrap();
        let y = nl.find("y").unwrap();
        let single =
            n_detect_cubes(&nl, Fault::stuck_at(y, true), 5, PodemConfig::default(), 1).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].care_count(), 3);

        let multi =
            n_detect_cubes(&nl, Fault::stuck_at(y, false), 3, PodemConfig::default(), 1).unwrap();
        assert!(multi.len() > 1, "expected diverse cubes, got {multi:?}");
        for c in &multi {
            assert!(justifies(&nl, c.bits(), y, true).unwrap());
        }
    }

    #[test]
    fn untestable_fault_yields_no_cubes() {
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let nl = bench::parse(src, "t").unwrap();
        let y = nl.find("y").unwrap();
        let cubes =
            n_detect_cubes(&nl, Fault::stuck_at(y, true), 4, PodemConfig::default(), 2).unwrap();
        assert!(cubes.is_empty());
    }

    #[test]
    fn n_zero_returns_empty() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        let y = nl.find("y").unwrap();
        let cubes =
            n_detect_cubes(&nl, Fault::stuck_at(y, false), 0, PodemConfig::default(), 3).unwrap();
        assert!(cubes.is_empty());
    }

    #[test]
    fn cubes_are_unique() {
        let nl = bench::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AND(a, b, c, d)\n",
            "t",
        )
        .unwrap();
        let y = nl.find("y").unwrap();
        let cubes =
            n_detect_cubes(&nl, Fault::stuck_at(y, true), 6, PodemConfig::default(), 4).unwrap();
        for (i, a) in cubes.iter().enumerate() {
            for b in &cubes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // All cubes excite y = 0 (stuck-at-1 ⇒ excitation value 0).
        for c in &cubes {
            assert!(c.bits().contains(&Tri::Zero));
        }
    }
}
