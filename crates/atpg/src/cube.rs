//! Test cubes: partial primary-input assignments with don't-cares.
//!
//! A [`Cube`] is the PODEM output the compatibility graph is built from.
//! Most bits of a cube are X, which is exactly what makes merging (and
//! hence large trigger cliques) possible — §III-C of the paper.

use std::fmt;

use rand::Rng;

use htforge_sim::Tri;

/// A partial assignment over the primary inputs of one netlist, in
/// `Netlist::inputs()` order.
///
/// # Examples
///
/// ```
/// use htforge_atpg::Cube;
/// use htforge_sim::Tri;
///
/// let a = Cube::from_tris(vec![Tri::One, Tri::X, Tri::Zero]);
/// let b = Cube::from_tris(vec![Tri::X, Tri::One, Tri::Zero]);
/// assert!(a.compatible(&b));
/// let merged = a.merge(&b).unwrap();
/// assert_eq!(merged.to_string(), "110");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    bits: Vec<Tri>,
}

impl Cube {
    /// An all-X cube of `width` inputs.
    #[must_use]
    pub fn all_x(width: usize) -> Self {
        Cube {
            bits: vec![Tri::X; width],
        }
    }

    /// Builds a cube from explicit tri-valued bits.
    #[must_use]
    pub fn from_tris(bits: Vec<Tri>) -> Self {
        Cube { bits }
    }

    /// Parses a cube from a `"01X"` string (case-insensitive X).
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0`, `1`, `x`, `X`.
    #[must_use]
    pub fn from_str_bits(s: &str) -> Self {
        Cube {
            bits: s
                .chars()
                .map(|c| match c {
                    '0' => Tri::Zero,
                    '1' => Tri::One,
                    'x' | 'X' => Tri::X,
                    other => panic!("invalid cube character `{other}`"),
                })
                .collect(),
        }
    }

    /// Number of inputs covered by the cube.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The tri-valued bits.
    #[must_use]
    pub fn bits(&self) -> &[Tri] {
        &self.bits
    }

    /// The value of input `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> Tri {
        self.bits[i]
    }

    /// Sets input `i`.
    pub fn set(&mut self, i: usize, value: Tri) {
        self.bits[i] = value;
    }

    /// Number of care (non-X) bits.
    #[must_use]
    pub fn care_count(&self) -> usize {
        self.bits.iter().filter(|b| b.is_care()).count()
    }

    /// `true` iff the cubes have no conflicting care bits — the paper's
    /// §III-C compatibility test between two rare-node test vectors.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn compatible(&self, other: &Cube) -> bool {
        assert_eq!(self.width(), other.width(), "cube width mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(&a, &b)| !a.conflicts(b))
    }

    /// Merges two cubes if they are compatible (care bits win over X).
    ///
    /// Returns `None` on conflict. Merging compatible cubes is the
    /// "single test vector for all trigger nodes" construction of §III-C.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        if !self.compatible(other) {
            return None;
        }
        Some(Cube {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| a.merge(b))
                .collect(),
        })
    }

    /// Merges `other` into `self` in place; returns `false` (leaving
    /// `self` unchanged) on conflict.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge_in_place(&mut self, other: &Cube) -> bool {
        if !self.compatible(other) {
            return false;
        }
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a = a.merge(b);
        }
        true
    }

    /// Fills every X bit with a random value, producing a full vector.
    #[must_use]
    pub fn fill_random<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<bool> {
        self.bits
            .iter()
            .map(|b| match b.to_bool() {
                Some(v) => v,
                None => rng.gen(),
            })
            .collect()
    }

    /// Fills every X bit with `fill`, producing a full vector.
    #[must_use]
    pub fn fill_with(&self, fill: bool) -> Vec<bool> {
        self.bits
            .iter()
            .map(|b| b.to_bool().unwrap_or(fill))
            .collect()
    }

    /// Bit-packs the cube into `(care0, care1)` masks: bit `i` of
    /// `care0` is set iff input `i` is assigned 0, dually for `care1`.
    ///
    /// Two cubes conflict iff
    /// `(a.care0 & b.care1) | (a.care1 & b.care0) ≠ 0`, which lets bulk
    /// pairwise compatibility checks (Algorithm 2's inner loop) run on
    /// whole words instead of per-bit values.
    #[must_use]
    pub fn care_masks(&self) -> (Vec<u64>, Vec<u64>) {
        let words = self.bits.len().div_ceil(64);
        let mut care0 = vec![0u64; words];
        let mut care1 = vec![0u64; words];
        for (i, b) in self.bits.iter().enumerate() {
            match b {
                Tri::Zero => care0[i / 64] |= 1 << (i % 64),
                Tri::One => care1[i / 64] |= 1 << (i % 64),
                Tri::X => {}
            }
        }
        (care0, care1)
    }

    /// `true` iff the full vector `v` lies inside this cube (agrees on all
    /// care bits).
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the width.
    #[must_use]
    pub fn contains(&self, v: &[bool]) -> bool {
        assert_eq!(v.len(), self.width(), "vector width mismatch");
        self.bits
            .iter()
            .zip(v)
            .all(|(&b, &bit)| b.to_bool().is_none_or(|c| c == bit))
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compatibility_rules() {
        let a = Cube::from_str_bits("1X0X");
        let b = Cube::from_str_bits("X10X");
        let c = Cube::from_str_bits("0XXX");
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
        assert!(b.compatible(&c));
    }

    #[test]
    fn merge_unions_care_bits() {
        let a = Cube::from_str_bits("1XX");
        let b = Cube::from_str_bits("X0X");
        let m = a.merge(&b).unwrap();
        assert_eq!(m.to_string(), "10X");
        assert_eq!(m.care_count(), 2);
        assert!(a.merge(&Cube::from_str_bits("0XX")).is_none());
    }

    #[test]
    fn merge_in_place_preserves_on_conflict() {
        let mut a = Cube::from_str_bits("1X");
        assert!(!a.merge_in_place(&Cube::from_str_bits("0X")));
        assert_eq!(a.to_string(), "1X");
        assert!(a.merge_in_place(&Cube::from_str_bits("X1")));
        assert_eq!(a.to_string(), "11");
    }

    #[test]
    fn pairwise_compatible_merge_is_associative() {
        // Pairwise compatibility implies the union assignment is
        // well-defined — the property Algorithm 2 relies on.
        let a = Cube::from_str_bits("1XX");
        let b = Cube::from_str_bits("X1X");
        let c = Cube::from_str_bits("XX0");
        let m1 = a.merge(&b).unwrap().merge(&c).unwrap();
        let m2 = b.merge(&c).unwrap().merge(&a).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn fill_respects_care_bits() {
        let c = Cube::from_str_bits("1X0");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let v = c.fill_random(&mut rng);
            assert!(v[0]);
            assert!(!v[2]);
            assert!(c.contains(&v));
        }
        assert_eq!(c.fill_with(true), vec![true, true, false]);
    }

    #[test]
    fn contains_checks_care_bits_only() {
        let c = Cube::from_str_bits("1X");
        assert!(c.contains(&[true, false]));
        assert!(c.contains(&[true, true]));
        assert!(!c.contains(&[false, false]));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = Cube::all_x(2).compatible(&Cube::all_x(3));
    }

    #[test]
    fn care_masks_agree_with_compatible() {
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        for _ in 0..200 {
            let width = 70; // spans two words
            let make = |rng: &mut StdRng| {
                Cube::from_tris(
                    (0..width)
                        .map(|_| match rng.gen_range(0..4) {
                            0 => Tri::Zero,
                            1 => Tri::One,
                            _ => Tri::X,
                        })
                        .collect(),
                )
            };
            let a = make(&mut rng);
            let b = make(&mut rng);
            let (a0, a1) = a.care_masks();
            let (b0, b1) = b.care_masks();
            let packed_conflict = a0
                .iter()
                .zip(&b1)
                .chain(a1.iter().zip(&b0))
                .any(|(&x, &y)| x & y != 0);
            assert_eq!(packed_conflict, !a.compatible(&b));
        }
    }
}
