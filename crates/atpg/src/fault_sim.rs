//! Bit-parallel single-stuck-at fault simulation.
//!
//! Grades a test set: for each fault, the faulty circuit is simulated
//! against the golden one over all patterns at once (64 per word), with
//! propagation restricted to the fault's fan-out cone. This is the
//! classic parallel-pattern single-fault propagation (PPSFP) scheme, and
//! the standard way to report stuck-at coverage for generated test sets.

use htforge_netlist::{graph, netlist::NodeId, Netlist, NetlistError, NodeKind};
use htforge_sim::{NodeValues, PatternSet, Simulator};

use crate::fault::Fault;

/// Result of grading one test set against a fault list.
#[derive(Debug, Clone)]
pub struct FaultSimReport {
    detected: Vec<bool>,
}

impl FaultSimReport {
    /// Per-fault detection flags, in the order the faults were given.
    #[must_use]
    pub fn detected_flags(&self) -> &[bool] {
        &self.detected
    }

    /// Number of detected faults.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Total faults simulated.
    #[must_use]
    pub fn total(&self) -> usize {
        self.detected.len()
    }

    /// Fault coverage in percent.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.detected.is_empty() {
            0.0
        } else {
            100.0 * self.detected() as f64 / self.detected.len() as f64
        }
    }
}

/// Returns the full single-stuck-at fault list of a netlist (both
/// polarities at every input/gate node output).
#[must_use]
pub fn all_faults(nl: &Netlist) -> Vec<Fault> {
    nl.iter()
        .filter(|(_, node)| !matches!(node.kind(), NodeKind::Dff))
        .flat_map(|(id, _)| [Fault::stuck_at(id, false), Fault::stuck_at(id, true)])
        .collect()
}

/// Simulates `faults` under `tests` and reports which are detected
/// (some pattern produces a primary-output difference).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if the pattern width does not match the input count.
pub fn fault_simulate(
    nl: &Netlist,
    faults: &[Fault],
    tests: &PatternSet,
) -> Result<FaultSimReport, NetlistError> {
    let sim = Simulator::new(nl)?;
    let good: NodeValues = sim.run_on(nl, tests);
    let order = graph::topo_order(nl)?;
    let mut topo_pos = vec![0u32; nl.node_count()];
    for (pos, &id) in order.iter().enumerate() {
        topo_pos[id.index()] = pos as u32;
    }
    let words = PatternSet::words_for(tests.len());
    let tail_mask = PatternSet::tail_mask(tests.len());

    let mut detected = Vec::with_capacity(faults.len());
    // Scratch: faulty values for cone nodes only, keyed by node index.
    let mut faulty: Vec<Vec<u64>> = vec![Vec::new(); nl.node_count()];
    let mut in_cone = vec![false; nl.node_count()];

    for &fault in faults {
        let site = fault.node();
        // Activation mask: patterns where the good value differs from the
        // stuck value — without activation there is nothing to propagate.
        let stuck_words = if fault.stuck_value() {
            vec![tail_mask; words]
        } else {
            vec![0u64; words]
        };
        let activated = good
            .words(site)
            .iter()
            .zip(&stuck_words)
            .any(|(&g, &f)| (g ^ f) & tail_mask != 0);
        if !activated {
            detected.push(false);
            continue;
        }

        // Event-driven cone simulation in topological order.
        let cone = graph::transitive_fanout(nl, &[site]);
        let mut cone_nodes: Vec<NodeId> = nl.node_ids().filter(|id| cone[id.index()]).collect();
        cone_nodes.sort_by_key(|id| topo_pos[id.index()]);
        for &id in &cone_nodes {
            in_cone[id.index()] = true;
        }

        faulty[site.index()] = stuck_words.clone();
        for &id in &cone_nodes {
            if id == site {
                continue;
            }
            let node = nl.node(id);
            let kind = match node.kind() {
                NodeKind::Gate(k) => k,
                _ => {
                    // Inputs/DFFs in the cone (impossible for inputs;
                    // DFF boundaries are not crossed) keep good values.
                    faulty[id.index()] = good.words(id).to_vec();
                    continue;
                }
            };
            // Columnar evaluation: seed from the first fanin's column,
            // fold the rest word-wise, then invert/mask. No per-word
            // scratch — whole columns stream through the fold.
            let fanins = node.fanins();
            let src = |f: NodeId| -> &[u64] {
                if in_cone[f.index()] {
                    &faulty[f.index()]
                } else {
                    good.words(f)
                }
            };
            let mut out: Vec<u64> = src(fanins[0]).to_vec();
            for &f in &fanins[1..] {
                let fw = src(f);
                match kind.fold_op() {
                    htforge_netlist::FoldOp::And => {
                        for (o, &v) in out.iter_mut().zip(fw) {
                            *o &= v;
                        }
                    }
                    htforge_netlist::FoldOp::Or => {
                        for (o, &v) in out.iter_mut().zip(fw) {
                            *o |= v;
                        }
                    }
                    htforge_netlist::FoldOp::Xor => {
                        for (o, &v) in out.iter_mut().zip(fw) {
                            *o ^= v;
                        }
                    }
                }
            }
            if kind.is_inverting() {
                for o in &mut out {
                    *o = !*o;
                }
            }
            if let Some(last) = out.last_mut() {
                *last &= tail_mask;
            }
            faulty[id.index()] = out;
        }

        let hit = nl.outputs().iter().any(|&o| {
            if !in_cone[o.index()] {
                return false;
            }
            good.words(o)
                .iter()
                .zip(&faulty[o.index()])
                .any(|(&g, &f)| (g ^ f) & tail_mask != 0)
        });
        detected.push(hit);

        for &id in &cone_nodes {
            in_cone[id.index()] = false;
            faulty[id.index()].clear();
        }
    }

    Ok(FaultSimReport { detected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::podem::{Podem, PodemConfig, TestResult};
    use htforge_netlist::bench;

    const C17: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn exhaustive_tests_detect_all_c17_faults() {
        let nl = bench::parse(C17, "c17").unwrap();
        let vectors: Vec<Vec<bool>> = (0u32..32)
            .map(|p| (0..5).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let tests = PatternSet::from_vectors(5, &vectors);
        let faults = all_faults(&nl);
        assert_eq!(faults.len(), 22);
        let report = fault_simulate(&nl, &faults, &tests).unwrap();
        assert_eq!(report.detected(), 22, "c17 has no redundant faults");
        assert!((report.coverage() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_test_set_detects_nothing() {
        let nl = bench::parse(C17, "c17").unwrap();
        let tests = PatternSet::zeros(5, 0);
        let report = fault_simulate(&nl, &all_faults(&nl), &tests).unwrap();
        assert_eq!(report.detected(), 0);
    }

    #[test]
    fn podem_cube_is_confirmed_by_fault_simulation() {
        // Cross-validation: every PODEM detect-mode cube, filled both
        // ways, detects its fault under fault simulation.
        let nl = bench::parse(C17, "c17").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default()).unwrap();
        for fault in all_faults(&nl) {
            let TestResult::Test(cube) = podem.generate(fault) else {
                panic!("{fault} should be testable");
            };
            let tests = PatternSet::from_vectors(5, &[cube.fill_with(false), cube.fill_with(true)]);
            let report = fault_simulate(&nl, &[fault], &tests).unwrap();
            assert_eq!(report.detected(), 1, "{fault} cube {cube}");
        }
    }

    #[test]
    fn undetectable_redundant_fault() {
        // y = OR(a, na) is constant 1 → y s-a-1 cannot be detected.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let nl = bench::parse(src, "t").unwrap();
        let y = nl.find("y").unwrap();
        let tests = PatternSet::from_vectors(1, &[vec![false], vec![true]]);
        let report = fault_simulate(&nl, &[Fault::stuck_at(y, true)], &tests).unwrap();
        assert_eq!(report.detected(), 0);
    }

    #[test]
    fn detection_respects_tail_masking() {
        // 3 patterns (partial word): no phantom detections from tail bits.
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        let y = nl.find("y").unwrap();
        let tests = PatternSet::from_vectors(1, &[vec![true], vec![true], vec![true]]);
        // y s-a-1 never differs when a is always 1.
        let report = fault_simulate(&nl, &[Fault::stuck_at(y, true)], &tests).unwrap();
        assert_eq!(report.detected(), 0);
        // y s-a-0 differs on every pattern.
        let report = fault_simulate(&nl, &[Fault::stuck_at(y, false)], &tests).unwrap();
        assert_eq!(report.detected(), 1);
    }
}
