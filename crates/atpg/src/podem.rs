//! The PODEM test-generation algorithm (Goel, IEEE ToC 1981).
//!
//! PODEM searches over primary-input assignments only: it repeatedly
//! derives an *objective* (a node and desired value), *backtraces* the
//! objective to an unassigned PI, assigns it, and forward-implicates. A
//! bounded decision stack with value flipping makes the search complete.
//!
//! Two modes are provided:
//!
//! * [`PodemMode::Justify`] — stop as soon as the fault site reaches its
//!   excitation value. This is what the compatibility graph needs: a cube
//!   that *drives a rare node to its rare value*.
//! * [`PodemMode::Detect`] — classic stuck-at ATPG: excite the fault and
//!   propagate the effect to a primary output (used by the ND-ATPG
//!   detection scheme).

use std::time::{Duration, Instant};

use htforge_obs::{BudgetTicker, RunBudget};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use htforge_netlist::{netlist::NodeId, GateKind, Netlist, NetlistError, NodeKind};
use htforge_scoap::Scoap;
use htforge_sim::tri::eval_gate_tri;
use htforge_sim::Tri;

use crate::cube::Cube;
use crate::fault::Fault;

/// What the engine must achieve before declaring success.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PodemMode {
    /// Drive the fault site to its excitation value (no propagation).
    Justify,
    /// Excite the fault *and* propagate its effect to a primary output.
    #[default]
    Detect,
}

/// Tuning knobs for the PODEM engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodemConfig {
    /// Success criterion.
    pub mode: PodemMode,
    /// Abort the search after this many backtracks.
    pub backtrack_limit: usize,
    /// Optional seed: when set, backtrace input selection is randomized
    /// instead of SCOAP-guided, yielding *different* cubes per seed — the
    /// mechanism behind [`crate::ndetect`].
    pub random_seed: Option<u64>,
    /// Optional per-fault wall-clock budget. When set, the search gives
    /// up with [`TestResult::TimedOut`] once past the deadline — instead
    /// of silently burning the whole backtrack limit on one pathological
    /// fault. The deadline is checked at every backtrack *and*,
    /// amortized (every 1024 events), inside the implication and
    /// D-frontier loops, so faults with huge cones but few backtracks
    /// cannot overshoot the budget arbitrarily. Hits are counted on the
    /// `podem.timeouts` observability counter and surfaced in the
    /// result, so campaigns can report them.
    pub time_budget: Option<Duration>,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            mode: PodemMode::Detect,
            backtrack_limit: 5_000,
            random_seed: None,
            time_budget: None,
        }
    }
}

impl PodemConfig {
    /// Convenience: default configuration in justify-only mode.
    #[must_use]
    pub fn justify() -> Self {
        PodemConfig {
            mode: PodemMode::Justify,
            ..PodemConfig::default()
        }
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// A test cube achieving the objective.
    Test(Cube),
    /// The decision tree was exhausted: no test exists
    /// (redundant / unexcitable fault).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
    /// The per-fault [`PodemConfig::time_budget`] expired before a
    /// verdict.
    TimedOut,
}

impl TestResult {
    /// The cube, if a test was found.
    #[must_use]
    pub fn cube(self) -> Option<Cube> {
        match self {
            TestResult::Test(c) => Some(c),
            _ => None,
        }
    }

    /// `true` if a test was found.
    #[must_use]
    pub fn is_test(&self) -> bool {
        matches!(self, TestResult::Test(_))
    }
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    pi_pos: usize,
    value: bool,
    flipped: bool,
}

/// Observability handles, fetched once per engine so the search loop
/// records with plain atomic ops (see `DESIGN.md` §8 for the names).
#[derive(Debug, Clone)]
struct PodemMetrics {
    faults: htforge_obs::Counter,
    backtracks: htforge_obs::Counter,
    implications: htforge_obs::Counter,
    timeouts: htforge_obs::Counter,
    aborted: htforge_obs::Counter,
    backtracks_per_fault: htforge_obs::Histogram,
}

impl PodemMetrics {
    fn from_global() -> Self {
        PodemMetrics {
            faults: htforge_obs::counter("podem.faults"),
            backtracks: htforge_obs::counter("podem.backtracks"),
            implications: htforge_obs::counter("podem.implications"),
            timeouts: htforge_obs::counter("podem.timeouts"),
            aborted: htforge_obs::counter("podem.aborted"),
            backtracks_per_fault: htforge_obs::histogram("podem.backtracks_per_fault"),
        }
    }
}

/// A PODEM engine bound to one (combinational or scan-cut) netlist.
///
/// The engine precomputes topological order, levels and SCOAP guidance
/// once; [`Podem::generate`] may then be called for many faults.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
pub struct Podem {
    nl: Netlist,
    topo_pos: Vec<u32>,
    scoap: Scoap,
    config: PodemConfig,
    /// good-plane values, indexed by node.
    good: Vec<Tri>,
    /// faulty-plane values (only maintained in Detect mode).
    faulty: Vec<Tri>,
    /// PI assignment, by input position.
    pi_values: Vec<Tri>,
    /// map node index -> input position (usize::MAX when not a PI).
    pi_pos_of: Vec<usize>,
    /// Event-queue membership stamps (see [`Podem::assign`]).
    queued: Vec<u32>,
    /// Current stamp generation.
    stamp: u32,
    rng: Option<StdRng>,
    metrics: PodemMetrics,
    /// Run-level budget (deadline + cancellation) shared with the
    /// surrounding pipeline; combined with the per-fault `time_budget`
    /// into one effective deadline per search.
    run_budget: RunBudget,
}

impl std::fmt::Debug for Podem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Podem")
            .field("netlist", &self.nl.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Podem {
    /// Builds an engine for `nl` (cloned internally).
    ///
    /// `nl` must be combinational or scan-cut; DFF nodes are rejected
    /// because their Q values are not controllable combinationally.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists,
    /// or [`NetlistError::BadArity`] (with kind `DFF`) if the netlist
    /// still contains flip-flops.
    pub fn new(nl: &Netlist, config: PodemConfig) -> Result<Self, NetlistError> {
        if let Some((_, node)) = nl.iter().find(|(_, n)| n.kind() == NodeKind::Dff) {
            return Err(NetlistError::BadArity {
                gate: node.name().to_owned(),
                kind: "DFF",
                got: node.fanins().len(),
            });
        }
        let order = htforge_netlist::graph::topo_order(nl)?;
        let mut topo_pos = vec![0u32; nl.node_count()];
        for (pos, &id) in order.iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        let scoap = Scoap::compute(nl)?;
        let mut pi_pos_of = vec![usize::MAX; nl.node_count()];
        for (pos, &id) in nl.inputs().iter().enumerate() {
            pi_pos_of[id.index()] = pos;
        }
        let n = nl.node_count();
        let num_pis = nl.inputs().len();
        Ok(Podem {
            nl: nl.clone(),
            topo_pos,
            scoap,
            config,
            good: vec![Tri::X; n],
            faulty: vec![Tri::X; n],
            pi_values: vec![Tri::X; num_pis],
            pi_pos_of,
            queued: vec![0; n],
            stamp: 0,
            rng: config.random_seed.map(StdRng::seed_from_u64),
            metrics: PodemMetrics::from_global(),
            run_budget: RunBudget::unlimited(),
        })
    }

    /// Attaches a run-level budget: every subsequent [`Podem::generate`]
    /// call respects the budget's deadline and cancellation token in
    /// addition to the per-fault [`PodemConfig::time_budget`]. Both
    /// kinds of expiry surface as [`TestResult::TimedOut`].
    pub fn set_run_budget(&mut self, budget: RunBudget) {
        self.run_budget = budget;
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &PodemConfig {
        &self.config
    }

    /// Reseeds the randomized-backtrace RNG (no-op for deterministic
    /// engines). Callers that parallelize cube generation use this to
    /// keep per-fault results independent of work partitioning.
    pub fn reseed(&mut self, seed: u64) {
        if self.rng.is_some() {
            self.rng = Some(StdRng::seed_from_u64(seed));
        }
    }

    /// Runs PODEM for `fault` and returns the outcome.
    ///
    /// The returned cube is over the netlist's primary inputs, in
    /// `inputs()` order. In `Justify` mode the cube drives the fault site
    /// to [`Fault::excitation_value`]; in `Detect` mode it additionally
    /// propagates the fault effect to a primary output.
    pub fn generate(&mut self, fault: Fault) -> TestResult {
        let mut backtracks = 0usize;
        let result = self.search(fault, &mut backtracks);
        let metrics = &self.metrics;
        metrics.faults.incr();
        metrics.backtracks.add(backtracks as u64);
        metrics.backtracks_per_fault.record(backtracks as u64);
        match result {
            TestResult::Aborted => metrics.aborted.incr(),
            TestResult::TimedOut => metrics.timeouts.incr(),
            _ => {}
        }
        result
    }

    /// Combines the per-fault `time_budget` with the run-level budget
    /// into one ticker for this search.
    fn search_ticker(&self) -> BudgetTicker {
        let fault_deadline = self
            .config
            .time_budget
            .map(|budget| Instant::now() + budget);
        let deadline = match (fault_deadline, self.run_budget.deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        BudgetTicker::new(
            RunBudget::new(deadline, self.run_budget.cancel_token()),
            1024,
        )
    }

    fn search(&mut self, fault: Fault, backtracks: &mut usize) -> TestResult {
        self.reset();
        let mut decisions: Vec<Decision> = Vec::new();
        let mut ticker = self.search_ticker();
        // Cancellation is checked up front: short searches may finish
        // inside one amortization window and must still honour it.
        if self.run_budget.cancelled() {
            return TestResult::TimedOut;
        }

        loop {
            if ticker.exceeded().is_some() {
                return TestResult::TimedOut;
            }
            if self.success(fault) {
                return TestResult::Test(Cube::from_tris(self.pi_values.clone()));
            }

            let objective = self.objective(fault, &mut ticker);
            let assignment = objective.and_then(|(node, value)| self.backtrace(node, value));

            match assignment {
                Some((pi_pos, value)) => {
                    self.assign(pi_pos, Tri::from_bool(value), fault, &mut ticker);
                    decisions.push(Decision {
                        pi_pos,
                        value,
                        flipped: false,
                    });
                }
                None => {
                    // Dead end: flip the most recent unflipped decision.
                    *backtracks += 1;
                    if *backtracks > self.config.backtrack_limit {
                        return TestResult::Aborted;
                    }
                    if ticker.check_now().is_err() {
                        return TestResult::TimedOut;
                    }
                    loop {
                        match decisions.pop() {
                            Some(d) if !d.flipped => {
                                let nv = !d.value;
                                self.assign(d.pi_pos, Tri::from_bool(nv), fault, &mut ticker);
                                decisions.push(Decision {
                                    pi_pos: d.pi_pos,
                                    value: nv,
                                    flipped: true,
                                });
                                break;
                            }
                            Some(d) => {
                                self.assign(d.pi_pos, Tri::X, fault, &mut ticker);
                            }
                            None => return TestResult::Untestable,
                        }
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        self.good.fill(Tri::X);
        self.faulty.fill(Tri::X);
        self.pi_values.fill(Tri::X);
    }

    fn success(&self, fault: Fault) -> bool {
        let site = self.good[fault.node().index()];
        if site != Tri::from_bool(fault.excitation_value()) {
            return false;
        }
        match self.config.mode {
            PodemMode::Justify => true,
            PodemMode::Detect => self.nl.outputs().iter().any(|&o| {
                let g = self.good[o.index()];
                let f = self.faulty[o.index()];
                g.is_care() && f.is_care() && g != f
            }),
        }
    }

    /// Derives the next objective `(node, value)`, or `None` when the
    /// current partial assignment cannot lead to a test (triggering a
    /// backtrack).
    fn objective(&mut self, fault: Fault, ticker: &mut BudgetTicker) -> Option<(NodeId, bool)> {
        let site = self.good[fault.node().index()];
        let want = fault.excitation_value();
        match site {
            Tri::X => return Some((fault.node(), want)),
            v if v != Tri::from_bool(want) => return None, // excitation blocked
            _ => {}
        }
        if self.config.mode == PodemMode::Justify {
            // Excited and justify-only: `success` would have caught it.
            return None;
        }
        // Fault excited: advance the D-frontier. Prefer the gate whose
        // output is closest to a PO (min CO).
        let mut best: Option<(NodeId, u32)> = None;
        for (id, node) in self.nl.iter() {
            if ticker.tick().is_err() {
                break; // the search loop reports TimedOut
            }
            let kind = match node.kind() {
                NodeKind::Gate(k) => k,
                _ => continue,
            };
            let out_definite = self.good[id.index()].is_care() && self.faulty[id.index()].is_care();
            if out_definite {
                continue;
            }
            let has_fault_input = node.fanins().iter().any(|f| {
                let g = self.good[f.index()];
                let fv = self.faulty[f.index()];
                g.is_care() && fv.is_care() && g != fv
            });
            let has_x_input = node.fanins().iter().any(|f| self.good[f.index()] == Tri::X);
            if has_fault_input && has_x_input {
                let co = self.scoap.co(id);
                if best.is_none_or(|(_, c)| co < c) {
                    best = Some((id, co));
                }
                let _ = kind;
            }
        }
        let (gate, _) = best?;
        let kind = self
            .nl
            .node(gate)
            .kind()
            .gate_kind()
            .expect("frontier gate");
        // Objective: set one X input to the non-controlling value so the
        // fault effect passes through.
        let target = match kind.controlling_value() {
            Some(cv) => !cv,
            // XOR-family: any definite value propagates; pick 0.
            None => false,
        };
        let x_input = self
            .nl
            .node(gate)
            .fanins()
            .iter()
            .copied()
            .find(|f| self.good[f.index()] == Tri::X)
            .expect("frontier gate has an X input");
        Some((x_input, target))
    }

    /// Walks an objective backward through X-valued nodes to an unassigned
    /// primary input, returning `(pi position, value)`.
    fn backtrace(&mut self, mut node: NodeId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            let pi_pos = self.pi_pos_of[node.index()];
            if pi_pos != usize::MAX {
                if self.pi_values[pi_pos] != Tri::X {
                    return None; // assigned PI can't serve the objective
                }
                return Some((pi_pos, value));
            }
            let kind = match self.nl.node(node).kind() {
                NodeKind::Gate(k) => k,
                _ => return None,
            };
            let fanins: Vec<NodeId> = self.nl.node(node).fanins().to_vec();
            let x_inputs: Vec<NodeId> = fanins
                .iter()
                .copied()
                .filter(|f| self.good[f.index()] == Tri::X)
                .collect();
            if x_inputs.is_empty() {
                return None;
            }
            let (next, next_value) = self.choose_input(kind, &fanins, &x_inputs, value);
            node = next;
            value = next_value;
        }
    }

    /// Picks which X input of a gate to pursue and the value it needs so
    /// the gate can eventually output `value`.
    fn choose_input(
        &mut self,
        kind: GateKind,
        fanins: &[NodeId],
        x_inputs: &[NodeId],
        value: bool,
    ) -> (NodeId, bool) {
        let pick_random = |rng: &mut StdRng| x_inputs[rng.gen_range(0..x_inputs.len())];
        match kind {
            GateKind::Not => (x_inputs[0], !value),
            GateKind::Buf => (x_inputs[0], value),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let inverted = kind.is_inverting();
                let base_value = value ^ inverted; // value of the AND/OR core
                let all_must = match kind {
                    GateKind::And | GateKind::Nand => base_value, // AND: 1 needs all 1
                    _ => !base_value,                             // OR: 0 needs all 0
                };
                let input_value = match kind {
                    GateKind::And | GateKind::Nand => base_value,
                    _ => base_value,
                };
                // all_must: every input must take input_value → pick the
                // *hardest* X input first. Otherwise one controlling input
                // suffices → pick the *easiest*.
                let chosen = if let Some(rng) = self.rng.as_mut() {
                    pick_random(rng)
                } else if all_must {
                    *x_inputs
                        .iter()
                        .max_by_key(|f| self.scoap.cc(**f, input_value))
                        .expect("x_inputs nonempty")
                } else {
                    *x_inputs
                        .iter()
                        .min_by_key(|f| self.scoap.cc(**f, input_value))
                        .expect("x_inputs nonempty")
                };
                (chosen, input_value)
            }
            GateKind::Xor | GateKind::Xnor => {
                // Need output parity = value (xor) / !value (xnor).
                let want = value ^ (kind == GateKind::Xnor);
                // Parity contributed by definite inputs.
                let definite_parity = fanins
                    .iter()
                    .filter(|f| self.good[f.index()].is_care())
                    .fold(false, |acc, f| acc ^ (self.good[f.index()] == Tri::One));
                // Drive the chosen X input so that, assuming the remaining
                // X inputs settle at 0, the parity works out.
                let chosen = if let Some(rng) = self.rng.as_mut() {
                    pick_random(rng)
                } else {
                    x_inputs[0]
                };
                (chosen, want ^ definite_parity)
            }
        }
    }

    /// Assigns one PI and event-drives the change through its fan-out
    /// cone: only nodes whose value actually changes are revisited, in
    /// topological order (a min-heap keyed by topo position).
    fn assign(&mut self, pi_pos: usize, value: Tri, fault: Fault, ticker: &mut BudgetTicker) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        self.pi_values[pi_pos] = value;
        let pi_node = self.nl.inputs()[pi_pos];
        let detect = self.config.mode == PodemMode::Detect;
        if detect {
            // Invariant, independent of this assignment's cone.
            self.faulty[fault.node().index()] = Tri::from_bool(fault.stuck_value());
        }

        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        self.stamp = self.stamp.wrapping_add(1);
        let stamp = self.stamp;
        let push = |heap: &mut BinaryHeap<Reverse<(u32, u32)>>,
                    queued: &mut [u32],
                    topo_pos: &[u32],
                    id: NodeId| {
            if queued[id.index()] != stamp {
                queued[id.index()] = stamp;
                heap.push(Reverse((topo_pos[id.index()], id.index() as u32)));
            }
        };
        let mut queued = std::mem::take(&mut self.queued);
        push(&mut heap, &mut queued, &self.topo_pos, pi_node);

        let mut scratch_g: Vec<Tri> = Vec::new();
        let mut scratch_f: Vec<Tri> = Vec::new();
        let mut evaluated = 0u64;
        while let Some(Reverse((_, raw))) = heap.pop() {
            evaluated += 1;
            if ticker.tick().is_err() {
                break; // abandon propagation; the search loop reports TimedOut
            }
            let id = NodeId::from_index(raw as usize);
            let node = self.nl.node(id);
            let (new_good, new_faulty) = match node.kind() {
                NodeKind::Input => (value, value),
                NodeKind::Gate(kind) => {
                    scratch_g.clear();
                    scratch_g.extend(node.fanins().iter().map(|f| self.good[f.index()]));
                    let g = eval_gate_tri(kind, &scratch_g);
                    let f = if detect {
                        scratch_f.clear();
                        scratch_f.extend(node.fanins().iter().map(|f| self.faulty[f.index()]));
                        eval_gate_tri(kind, &scratch_f)
                    } else {
                        Tri::X
                    };
                    (g, f)
                }
                NodeKind::Dff => continue,
            };
            let new_faulty = if detect && id == fault.node() {
                Tri::from_bool(fault.stuck_value())
            } else {
                new_faulty
            };
            let changed = self.good[id.index()] != new_good
                || (detect && self.faulty[id.index()] != new_faulty);
            self.good[id.index()] = new_good;
            if detect {
                self.faulty[id.index()] = new_faulty;
            }
            if changed {
                for &f in node.fanouts() {
                    if self.nl.node(f).kind() != NodeKind::Dff {
                        push(&mut heap, &mut queued, &self.topo_pos, f);
                    }
                }
            }
        }
        self.queued = queued;
        self.metrics.implications.add(evaluated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;
    use htforge_sim::tri::{justifies, simulate_tri};

    const C17: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    fn cube_detects(nl: &Netlist, cube: &Cube, fault: Fault) -> bool {
        // Verify by explicit good/faulty 3-valued simulation.
        let good = simulate_tri(nl, cube.bits()).unwrap();
        if good[fault.node().index()] != Tri::from_bool(fault.excitation_value()) {
            return false;
        }
        // Faulty sim: brute-force by building values with the site forced.
        // Re-run a manual topological pass.
        let order = htforge_netlist::graph::topo_order(nl).unwrap();
        let mut faulty = vec![Tri::X; nl.node_count()];
        for (pos, &id) in nl.inputs().iter().enumerate() {
            faulty[id.index()] = cube.bits()[pos];
        }
        if nl.inputs().iter().any(|&i| i == fault.node()) {
            faulty[fault.node().index()] = Tri::from_bool(fault.stuck_value());
        }
        for id in order {
            if let NodeKind::Gate(kind) = nl.node(id).kind() {
                let ins: Vec<Tri> = nl
                    .node(id)
                    .fanins()
                    .iter()
                    .map(|f| faulty[f.index()])
                    .collect();
                faulty[id.index()] = eval_gate_tri(kind, &ins);
            }
            if id == fault.node() && !nl.inputs().contains(&id) {
                faulty[id.index()] = Tri::from_bool(fault.stuck_value());
            }
        }
        nl.outputs().iter().any(|&o| {
            good[o.index()].is_care()
                && faulty[o.index()].is_care()
                && good[o.index()] != faulty[o.index()]
        })
    }

    #[test]
    fn justify_and_gate_output_one() {
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let y = nl.find("y").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::justify()).unwrap();
        let cube = podem
            .generate(Fault::for_rare_event(y, true))
            .cube()
            .expect("testable");
        assert!(justifies(&nl, cube.bits(), y, true).unwrap());
        assert_eq!(cube.care_count(), 2);
    }

    #[test]
    fn justify_leaves_dont_cares() {
        // y = OR(a, b, c, d): justifying y = 1 needs one care bit.
        let nl = bench::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = OR(a, b, c, d)\n",
            "t",
        )
        .unwrap();
        let y = nl.find("y").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::justify()).unwrap();
        let cube = podem
            .generate(Fault::for_rare_event(y, true))
            .cube()
            .expect("testable");
        assert!(justifies(&nl, cube.bits(), y, true).unwrap());
        assert_eq!(cube.care_count(), 1);
    }

    #[test]
    fn detect_every_c17_fault() {
        let nl = bench::parse(C17, "c17").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default()).unwrap();
        let mut found = 0;
        for id in nl.node_ids() {
            for v in [false, true] {
                let fault = Fault::stuck_at(id, v);
                match podem.generate(fault) {
                    TestResult::Test(cube) => {
                        assert!(
                            cube_detects(&nl, &cube, fault),
                            "cube {cube} fails to detect {fault}"
                        );
                        found += 1;
                    }
                    other => panic!("c17 {fault}: expected test, got {other:?}"),
                }
            }
        }
        // All 22 single stuck-at faults on nodes are testable in c17.
        assert_eq!(found, 22);
    }

    #[test]
    fn redundant_fault_is_untestable() {
        // y = OR(a, na) is constant 1; y stuck-at-1 cannot be excited.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let nl = bench::parse(src, "t").unwrap();
        let y = nl.find("y").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default()).unwrap();
        assert_eq!(
            podem.generate(Fault::stuck_at(y, true)),
            TestResult::Untestable
        );
    }

    #[test]
    fn unobservable_fault_is_untestable_in_detect_mode() {
        // g is dangling: excitable but not observable.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = BUF(a)\ng = AND(a, b)\n";
        let nl = bench::parse(src, "t").unwrap();
        let g = nl.find("g").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default()).unwrap();
        assert_eq!(
            podem.generate(Fault::stuck_at(g, false)),
            TestResult::Untestable
        );
        // ...but justifiable in justify mode.
        let mut jpodem = Podem::new(&nl, PodemConfig::justify()).unwrap();
        assert!(jpodem.generate(Fault::stuck_at(g, false)).is_test());
    }

    #[test]
    fn xor_justification() {
        let nl = bench::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)\n",
            "t",
        )
        .unwrap();
        let y = nl.find("y").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::justify()).unwrap();
        for v in [false, true] {
            let cube = podem
                .generate(Fault::for_rare_event(y, v))
                .cube()
                .expect("testable");
            assert!(justifies(&nl, cube.bits(), y, v).unwrap(), "value {v}");
        }
    }

    #[test]
    fn randomized_seeds_yield_valid_cubes() {
        let nl = bench::parse(C17, "c17").unwrap();
        let g16 = nl.find("16").unwrap();
        for seed in 0..5 {
            let cfg = PodemConfig {
                mode: PodemMode::Justify,
                random_seed: Some(seed),
                ..PodemConfig::default()
            };
            let mut podem = Podem::new(&nl, cfg).unwrap();
            let cube = podem
                .generate(Fault::for_rare_event(g16, false))
                .cube()
                .expect("testable");
            assert!(justifies(&nl, cube.bits(), g16, false).unwrap());
        }
    }

    #[test]
    fn zero_time_budget_reports_timeout() {
        // The redundant fault below needs at least one backtrack to be
        // proven untestable, so a zero budget must trip first.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let nl = bench::parse(src, "t").unwrap();
        let y = nl.find("y").unwrap();
        let cfg = PodemConfig {
            time_budget: Some(Duration::ZERO),
            ..PodemConfig::default()
        };
        let mut podem = Podem::new(&nl, cfg).unwrap();
        assert_eq!(
            podem.generate(Fault::stuck_at(y, true)),
            TestResult::TimedOut
        );
        // A generous budget changes nothing for testable faults.
        let cfg = PodemConfig {
            time_budget: Some(Duration::from_secs(60)),
            ..PodemConfig::default()
        };
        let nl17 = bench::parse(C17, "c17").unwrap();
        let mut podem = Podem::new(&nl17, cfg).unwrap();
        let g16 = nl17.find("16").unwrap();
        assert!(podem.generate(Fault::stuck_at(g16, false)).is_test());
    }

    #[test]
    fn implication_loop_respects_deadline_without_backtracks() {
        // A deep BUF chain justifies in zero backtracks, so the old
        // backtrack-only deadline check never fired and a zero budget
        // still returned a test. The amortized in-loop check must trip
        // during implication instead.
        let mut src = String::from("INPUT(n0)\nOUTPUT(y)\n");
        let depth = 4096;
        for i in 1..depth {
            src.push_str(&format!("n{i} = BUF(n{})\n", i - 1));
        }
        src.push_str(&format!("y = BUF(n{})\n", depth - 1));
        let nl = bench::parse(&src, "chain").unwrap();
        let y = nl.find("y").unwrap();

        // Sanity: with no budget the fault is trivially testable.
        let mut podem = Podem::new(&nl, PodemConfig::justify()).unwrap();
        assert!(podem.generate(Fault::for_rare_event(y, true)).is_test());

        let cfg = PodemConfig {
            time_budget: Some(Duration::ZERO),
            ..PodemConfig::justify()
        };
        let mut podem = Podem::new(&nl, cfg).unwrap();
        assert_eq!(
            podem.generate(Fault::for_rare_event(y, true)),
            TestResult::TimedOut
        );
    }

    #[test]
    fn run_budget_cancellation_stops_generation() {
        let nl = bench::parse(C17, "c17").unwrap();
        let g16 = nl.find("16").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::justify()).unwrap();
        let budget = htforge_obs::RunBudget::unlimited();
        budget.cancel_token().cancel();
        podem.set_run_budget(budget);
        assert_eq!(
            podem.generate(Fault::for_rare_event(g16, false)),
            TestResult::TimedOut
        );
        // Replacing the budget restores normal operation.
        podem.set_run_budget(htforge_obs::RunBudget::unlimited());
        assert!(podem.generate(Fault::for_rare_event(g16, false)).is_test());
    }

    #[test]
    fn generate_records_search_counters() {
        let before = htforge_obs::counter("podem.faults").get();
        let nl = bench::parse(C17, "c17").unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default()).unwrap();
        let g16 = nl.find("16").unwrap();
        assert!(podem.generate(Fault::stuck_at(g16, false)).is_test());
        assert_eq!(htforge_obs::counter("podem.faults").get(), before + 1);
        // Every fault evaluates at least one node per PI assignment.
        assert!(htforge_obs::counter("podem.implications").get() > 0);
    }

    #[test]
    fn sequential_netlist_rejected() {
        let src = "INPUT(a)\nOUTPUT(g)\ng = XOR(a, q)\nq = DFF(g)\n";
        let nl = bench::parse(src, "seq").unwrap();
        assert!(Podem::new(&nl, PodemConfig::default()).is_err());
        assert!(Podem::new(&nl.scan_cut(), PodemConfig::default()).is_ok());
    }
}
