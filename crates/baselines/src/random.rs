//! Random HT insertion — the paper's "Random HT Benchmarks" comparator.
//!
//! Trigger sets are sampled uniformly from the rare-node pool; each
//! candidate must then be *validated* by brute-force joint-trigger search
//! ([`crate::validate`]). Because the probability that `q` independently
//! chosen rare nodes are jointly excitable collapses rapidly with `q`,
//! almost all candidates are rejected, and the insertion time balloons —
//! the behaviour Table III reports (hours-to-days for 100 instances
//! against sub-minute for the compatibility-graph framework).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use htforge_atpg::Cube;
use htforge_core::insert::insert_trojan_at;
use htforge_core::payload::choose_payload;
use htforge_core::{InfectedDesign, InsertionError, PayloadStrategy, TriggerPlan};
use htforge_netlist::{netlist::NodeId, Netlist};
use htforge_scoap::Scoap;
use htforge_sim::{PatternSet, RareNodeExtractor, Tri};

use crate::validate::{find_joint_trigger, ValidationBudget};
use crate::BaselineOutcome;

/// Configuration and driver for random insertion.
///
/// # Examples
///
/// ```
/// use htforge_baselines::RandomInserter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = htforge_circuits::load("c17")?;
/// let outcome = RandomInserter::new(2, 1)
///     .with_theta(0.3)
///     .with_profile_vectors(2_000)
///     .run(&nl, 7)?;
/// assert!(outcome.infected.len() <= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomInserter {
    trigger_nodes: usize,
    num_instances: usize,
    theta: f64,
    profile_vectors: usize,
    max_fanin: usize,
    budget: ValidationBudget,
    /// Candidate attempts before giving up per instance.
    max_attempts_per_instance: usize,
}

impl RandomInserter {
    /// A random inserter producing `num_instances` trojans with
    /// `trigger_nodes` trigger nodes each.
    #[must_use]
    pub fn new(trigger_nodes: usize, num_instances: usize) -> Self {
        RandomInserter {
            trigger_nodes,
            num_instances,
            theta: 0.20,
            profile_vectors: 10_000,
            max_fanin: 4,
            budget: ValidationBudget::default(),
            max_attempts_per_instance: 50,
        }
    }

    /// Sets the rareness threshold (default 0.20).
    #[must_use]
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the profiling vector count (default 10 000).
    #[must_use]
    pub fn with_profile_vectors(mut self, vectors: usize) -> Self {
        self.profile_vectors = vectors;
        self
    }

    /// Sets the per-candidate validation budget.
    #[must_use]
    pub fn with_budget(mut self, budget: ValidationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the candidate attempts per instance (default 50).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts_per_instance = attempts;
        self
    }

    /// Runs the campaign on `nl` with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`InsertionError::NotEnoughRareNodes`] when the rare-node
    /// pool is smaller than `trigger_nodes`, or propagates netlist
    /// errors. A campaign that validates fewer instances than requested
    /// is *not* an error — the outcome simply contains fewer designs
    /// (and a large [`BaselineOutcome::rejected`] count).
    pub fn run(&self, nl: &Netlist, seed: u64) -> Result<BaselineOutcome, InsertionError> {
        let start = Instant::now();
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let scoap = Scoap::compute(nl)?;
        let patterns = PatternSet::random(comb.inputs().len(), self.profile_vectors, seed);
        let rare = RareNodeExtractor::new(self.theta).extract(&comb, &patterns)?;
        if rare.len() < self.trigger_nodes {
            return Err(InsertionError::NotEnoughRareNodes {
                found: rare.len(),
                needed: self.trigger_nodes,
            });
        }
        let pool: Vec<(NodeId, bool)> = rare.iter().map(|r| (r.node, r.rare_value)).collect();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
        let mut infected = Vec::new();
        let mut rejected = 0usize;

        'instances: for instance in 0..self.num_instances {
            for attempt in 0..self.max_attempts_per_instance {
                let mut candidate = pool.clone();
                candidate.shuffle(&mut rng);
                candidate.truncate(self.trigger_nodes);

                let found = find_joint_trigger(
                    &comb,
                    &candidate,
                    self.budget,
                    seed.wrapping_add((instance * 1_000 + attempt) as u64),
                )?;
                let Some(vector) = found else {
                    rejected += 1;
                    continue;
                };

                let rare_values: Vec<bool> = candidate.iter().map(|&(_, v)| v).collect();
                let plan = TriggerPlan::synthesize(&rare_values, self.max_fanin);
                let trigger_nodes: Vec<NodeId> = candidate.iter().map(|&(n, _)| n).collect();
                let Some(payload) = choose_payload(
                    nl,
                    &scoap,
                    &trigger_nodes,
                    PayloadStrategy::Random(seed.wrapping_add(instance as u64)),
                ) else {
                    rejected += 1;
                    continue;
                };
                let cube = Cube::from_tris(vector.iter().map(|&b| Tri::from_bool(b)).collect());
                let (netlist, trojan) = insert_trojan_at(
                    nl,
                    &candidate,
                    &plan,
                    payload,
                    &format!("rnd{instance}"),
                    cube,
                )?;
                infected.push(InfectedDesign { netlist, trojan });
                continue 'instances;
            }
            // All attempts for this instance failed; move on.
        }

        Ok(BaselineOutcome {
            infected,
            rejected,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_sim::simulator::BoundSimulator;

    #[test]
    fn c17_random_insertion_validates() {
        let nl = htforge_circuits::load("c17").unwrap();
        let outcome = RandomInserter::new(2, 2)
            .with_theta(0.3)
            .with_profile_vectors(2_000)
            .run(&nl, 11)
            .unwrap();
        assert!(!outcome.infected.is_empty());
        for d in &outcome.infected {
            assert!(d.netlist.validate().is_ok());
            // The stored activation cube must actually fire the trigger.
            let sim = BoundSimulator::new(&d.netlist).unwrap();
            let v = d.trojan.activation_cube.fill_with(false);
            let ps = PatternSet::from_vectors(nl.inputs().len(), &[v]);
            assert!(sim.run(&ps).value(d.trojan.trigger_output, 0));
        }
    }

    #[test]
    fn rejection_counter_moves_on_hard_sets() {
        // Tiny budget: most candidates will fail validation.
        let nl = htforge_circuits::load("c17").unwrap();
        let outcome = RandomInserter::new(2, 1)
            .with_theta(0.3)
            .with_profile_vectors(2_000)
            .with_budget(ValidationBudget {
                vectors: 2,
                batch: 2,
            })
            .with_max_attempts(5)
            .run(&nl, 3)
            .unwrap();
        assert!(outcome.infected.len() <= 1);
        // Either it got lucky or it rejected candidates; both legal.
        assert!(outcome.rejected <= 5);
    }

    #[test]
    fn too_many_trigger_nodes() {
        let nl = htforge_circuits::load("c17").unwrap();
        let err = RandomInserter::new(500, 1)
            .with_theta(0.3)
            .with_profile_vectors(500)
            .run(&nl, 0)
            .unwrap_err();
        assert!(matches!(err, InsertionError::NotEnoughRareNodes { .. }));
    }
}
