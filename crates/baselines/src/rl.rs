//! Reinforcement-learning HT insertion — the ATTRITION / Sarihi-style
//! comparator of the paper's Table III.
//!
//! A tabular Q-learning agent constructs trigger sets one rare node at a
//! time. The per-node action values are seeded from SCOAP features
//! (harder-to-control nodes are *a-priori* more attractive, as in Sarihi
//! et al.) and updated from episode rewards. The reward requires the
//! expensive simulation-based joint-trigger validation that the paper's
//! framework avoids; episode count × validation budget is what makes
//! this family slow.
//!
//! This is a substitute for the authors' closed-source RL tools: it
//! reproduces their *cost structure* and output interface (validated
//! trojans with small `q`), not their exact hyper-parameters (see
//! `DESIGN.md` §3).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use htforge_atpg::Cube;
use htforge_core::insert::insert_trojan_at;
use htforge_core::payload::choose_payload;
use htforge_core::{InfectedDesign, InsertionError, PayloadStrategy, TriggerPlan};
use htforge_netlist::{netlist::NodeId, Netlist};
use htforge_scoap::Scoap;
use htforge_sim::{PatternSet, RareNodeExtractor, Tri};

use crate::validate::{count_joint_occurrences, find_joint_trigger, ValidationBudget};
use crate::BaselineOutcome;

/// Hyper-parameters of the Q-learning inserter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlConfig {
    /// Trigger nodes per trojan (`q`; the RL comparators use ≤ 5).
    pub trigger_nodes: usize,
    /// Validated trojan instances to emit.
    pub num_instances: usize,
    /// Training episodes.
    pub episodes: usize,
    /// Learning rate α.
    pub alpha: f64,
    /// Exploration rate ε (ε-greedy action selection).
    pub epsilon: f64,
    /// Rareness threshold for the candidate pool.
    pub theta: f64,
    /// Profiling vector count.
    pub profile_vectors: usize,
    /// Simulation budget per episode validation.
    pub budget: ValidationBudget,
    /// Random vectors simulated per episode for the *stealth* part of the
    /// reward (ATTRITION-style): a candidate set only counts as a success
    /// when its joint trigger condition never fires under this pattern
    /// set. Set to 0 to disable the stealth term.
    pub stealth_patterns: usize,
    /// Maximum trigger-gate fan-in.
    pub max_fanin: usize,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            trigger_nodes: 5,
            num_instances: 1,
            episodes: 200,
            alpha: 0.2,
            epsilon: 0.2,
            theta: 0.20,
            profile_vectors: 10_000,
            budget: ValidationBudget {
                vectors: 20_000,
                batch: 4_096,
            },
            stealth_patterns: 20_000,
            max_fanin: 4,
        }
    }
}

/// The Q-learning inserter.
///
/// # Examples
///
/// ```
/// use htforge_baselines::{RlConfig, RlInserter};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = htforge_circuits::load("c17")?;
/// let config = RlConfig {
///     trigger_nodes: 2,
///     episodes: 30,
///     theta: 0.3,
///     profile_vectors: 2_000,
///     ..RlConfig::default()
/// };
/// let outcome = RlInserter::new(config).run(&nl, 5)?;
/// assert!(outcome.infected.len() <= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlInserter {
    config: RlConfig,
}

impl RlInserter {
    /// Creates an inserter with the given hyper-parameters.
    #[must_use]
    pub fn new(config: RlConfig) -> Self {
        RlInserter { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &RlConfig {
        &self.config
    }

    /// Trains the agent on `nl` and emits validated trojans.
    ///
    /// # Errors
    ///
    /// Returns [`InsertionError::NotEnoughRareNodes`] when the pool is
    /// smaller than `trigger_nodes`; propagates netlist errors.
    pub fn run(&self, nl: &Netlist, seed: u64) -> Result<BaselineOutcome, InsertionError> {
        let cfg = &self.config;
        let start = Instant::now();
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let scoap = Scoap::compute(nl)?;
        let patterns = PatternSet::random(comb.inputs().len(), cfg.profile_vectors, seed);
        let rare = RareNodeExtractor::new(cfg.theta).extract(&comb, &patterns)?;
        if rare.len() < cfg.trigger_nodes {
            return Err(InsertionError::NotEnoughRareNodes {
                found: rare.len(),
                needed: cfg.trigger_nodes,
            });
        }
        let pool: Vec<(NodeId, bool)> = rare.iter().map(|r| (r.node, r.rare_value)).collect();

        // Q-values seeded from SCOAP controllability toward the rare value
        // (normalized): harder nodes start more attractive.
        let mut q_values: Vec<f64> = pool
            .iter()
            .map(|&(n, v)| {
                let cc = scoap.cc(n, v) as f64;
                (cc / (cc + 10.0)).min(1.0) * 0.5
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x93A4);
        // (validated trigger set, witness joint-trigger vector)
        type Success = (Vec<(NodeId, bool)>, Vec<bool>);
        let mut successes: Vec<Success> = Vec::new();
        let mut rejected = 0usize;

        for episode in 0..cfg.episodes {
            let set = self.select_set(&pool, &q_values, &mut rng);
            let found = find_joint_trigger(
                &comb,
                &set,
                cfg.budget,
                seed.wrapping_add(episode as u64).wrapping_mul(0x85EB_CA6B),
            )?;
            // ATTRITION-style composite reward: the set must be jointly
            // excitable (validation) *and* stealthy (its trigger must not
            // fire under a fresh random pattern set).
            let stealthy = match (&found, cfg.stealth_patterns) {
                (Some(_), 0) => true,
                (Some(_), n) => {
                    count_joint_occurrences(
                        &comb,
                        &set,
                        n,
                        (seed ^ 0x57EA).wrapping_add(episode as u64),
                    )? == 0
                }
                (None, _) => false,
            };
            let reward = match (&found, stealthy) {
                (Some(_), true) => 1.0,
                (Some(_), false) => 0.3,
                (None, _) => -0.1,
            };
            for &(node, value) in &set {
                let idx = pool
                    .iter()
                    .position(|&(n, v)| n == node && v == value)
                    .expect("set drawn from pool");
                q_values[idx] += cfg.alpha * (reward - q_values[idx]);
            }
            match found {
                Some(vector) if stealthy => {
                    let mut sorted = set.clone();
                    sorted.sort_unstable();
                    if !successes.iter().any(|(s, _)| *s == sorted) {
                        successes.push((sorted, vector));
                        if successes.len() >= cfg.num_instances {
                            break;
                        }
                    }
                }
                _ => rejected += 1,
            }
        }

        let mut infected = Vec::new();
        for (i, (set, vector)) in successes.iter().enumerate() {
            let rare_values: Vec<bool> = set.iter().map(|&(_, v)| v).collect();
            let plan = TriggerPlan::synthesize(&rare_values, cfg.max_fanin);
            let trigger_nodes: Vec<NodeId> = set.iter().map(|&(n, _)| n).collect();
            let Some(payload) = choose_payload(
                nl,
                &scoap,
                &trigger_nodes,
                PayloadStrategy::Random(seed.wrapping_add(i as u64)),
            ) else {
                continue;
            };
            let cube = Cube::from_tris(vector.iter().map(|&b| Tri::from_bool(b)).collect());
            let (netlist, trojan) =
                insert_trojan_at(nl, set, &plan, payload, &format!("rl{i}"), cube)?;
            infected.push(InfectedDesign { netlist, trojan });
        }

        Ok(BaselineOutcome {
            infected,
            rejected,
            elapsed: start.elapsed(),
        })
    }

    /// ε-greedy selection of a `q`-node set without replacement.
    fn select_set(
        &self,
        pool: &[(NodeId, bool)],
        q_values: &[f64],
        rng: &mut StdRng,
    ) -> Vec<(NodeId, bool)> {
        let q = self.config.trigger_nodes;
        let mut available: Vec<usize> = (0..pool.len()).collect();
        let mut chosen = Vec::with_capacity(q);
        for _ in 0..q {
            let pick_pos = if rng.gen_bool(self.config.epsilon) {
                rng.gen_range(0..available.len())
            } else {
                available
                    .iter()
                    .enumerate()
                    .max_by(|(_, &a), (_, &b)| {
                        q_values[a]
                            .partial_cmp(&q_values[b])
                            .expect("finite Q values")
                    })
                    .map(|(pos, _)| pos)
                    .expect("available nonempty")
            };
            let idx = available.swap_remove(pick_pos);
            chosen.push(pool[idx]);
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_sim::simulator::BoundSimulator;

    fn quick_config() -> RlConfig {
        RlConfig {
            trigger_nodes: 2,
            num_instances: 2,
            episodes: 50,
            theta: 0.3,
            profile_vectors: 2_000,
            budget: ValidationBudget {
                vectors: 5_000,
                batch: 1_024,
            },
            // c17's rare nodes are not stealthy at q = 2; the stealth
            // term is exercised by the integration/bench harnesses.
            stealth_patterns: 0,
            ..RlConfig::default()
        }
    }

    #[test]
    fn c17_rl_insertion_produces_validated_trojans() {
        let nl = htforge_circuits::load("c17").unwrap();
        let outcome = RlInserter::new(quick_config()).run(&nl, 21).unwrap();
        assert!(!outcome.infected.is_empty(), "agent should find a set");
        for d in &outcome.infected {
            assert!(d.netlist.validate().is_ok());
            let sim = BoundSimulator::new(&d.netlist).unwrap();
            let v = d.trojan.activation_cube.fill_with(false);
            let ps = PatternSet::from_vectors(nl.inputs().len(), &[v]);
            assert!(
                sim.run(&ps).value(d.trojan.trigger_output, 0),
                "validated vector must fire the trigger"
            );
        }
    }

    #[test]
    fn distinct_instances() {
        let nl = htforge_circuits::load("c17").unwrap();
        let outcome = RlInserter::new(quick_config()).run(&nl, 22).unwrap();
        let mut sets: Vec<Vec<NodeId>> = outcome
            .infected
            .iter()
            .map(|d| {
                let mut s: Vec<NodeId> = d.trojan.trigger_inputs.iter().map(|&(n, _)| n).collect();
                s.sort_unstable();
                s
            })
            .collect();
        let before = sets.len();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), before);
    }

    #[test]
    fn pool_too_small_errors() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = RlConfig {
            trigger_nodes: 100,
            theta: 0.3,
            profile_vectors: 500,
            ..quick_config()
        };
        assert!(matches!(
            RlInserter::new(cfg).run(&nl, 0),
            Err(InsertionError::NotEnoughRareNodes { .. })
        ));
    }
}
