//! Joint-trigger validation by brute-force simulation search.
//!
//! Random and RL-based inserters choose trigger sets with *no guarantee*
//! that a single input vector drives all members to their rare values.
//! They must therefore validate each candidate by searching for such a
//! vector — the step the compatibility graph eliminates, and the source
//! of the 10³–10⁴× insertion-time gap in the paper's Table III.

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError};
use htforge_sim::{PatternSet, Simulator};

/// How much simulation effort to spend per validation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationBudget {
    /// Total random vectors to try.
    pub vectors: usize,
    /// Vectors simulated per bit-parallel batch.
    pub batch: usize,
}

impl Default for ValidationBudget {
    fn default() -> Self {
        ValidationBudget {
            vectors: 100_000,
            batch: 4_096,
        }
    }
}

/// Searches for one input vector that simultaneously drives every
/// `(node, value)` pair in `targets`. Returns the vector if found within
/// the budget.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `targets` is empty or the budget has a zero batch size.
pub fn find_joint_trigger(
    nl: &Netlist,
    targets: &[(NodeId, bool)],
    budget: ValidationBudget,
    seed: u64,
) -> Result<Option<Vec<bool>>, NetlistError> {
    assert!(!targets.is_empty(), "validation needs at least one target");
    assert!(budget.batch > 0, "batch size must be positive");
    let sim = Simulator::new(nl)?;
    let num_inputs = nl.inputs().len();

    let mut tried = 0usize;
    let mut batch_seed = seed;
    while tried < budget.vectors {
        let count = budget.batch.min(budget.vectors - tried);
        let ps = PatternSet::random(num_inputs, count, batch_seed);
        let vals = sim.run_on(nl, &ps);
        // Joint hit: AND over all target columns (value-adjusted).
        let words = PatternSet::words_for(count);
        'word: for w in 0..words {
            let mut hit = if w + 1 == words {
                PatternSet::tail_mask(count)
            } else {
                u64::MAX
            };
            for &(node, value) in targets {
                let v = vals.words(node)[w];
                hit &= if value { v } else { !v };
                if hit == 0 {
                    continue 'word;
                }
            }
            let bit = hit.trailing_zeros() as usize;
            let pattern = w * 64 + bit;
            return Ok(Some(ps.pattern(pattern)));
        }
        tried += count;
        batch_seed = batch_seed
            .wrapping_add(0x9E37_79B9)
            .wrapping_mul(6364136223846793005);
    }
    Ok(None)
}

/// Counts how many of `vectors` random input vectors simultaneously
/// drive every `(node, value)` pair in `targets` — the *stealth* metric
/// of ATTRITION-style RL rewards (a trigger combination that fires under
/// random patterns is not stealthy).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `targets` is empty.
pub fn count_joint_occurrences(
    nl: &Netlist,
    targets: &[(NodeId, bool)],
    vectors: usize,
    seed: u64,
) -> Result<usize, NetlistError> {
    assert!(
        !targets.is_empty(),
        "stealth check needs at least one target"
    );
    let sim = Simulator::new(nl)?;
    let ps = PatternSet::random(nl.inputs().len(), vectors, seed);
    let vals = sim.run_on(nl, &ps);
    let words = PatternSet::words_for(vectors);
    let mut hits = 0usize;
    for w in 0..words {
        let mut hit = if w + 1 == words {
            PatternSet::tail_mask(vectors)
        } else {
            u64::MAX
        };
        for &(node, value) in targets {
            let v = vals.words(node)[w];
            hit &= if value { v } else { !v };
            if hit == 0 {
                break;
            }
        }
        hits += hit.count_ones() as usize;
    }
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;
    use htforge_sim::simulator::BoundSimulator;

    #[test]
    fn finds_satisfiable_joint_trigger() {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(x)
OUTPUT(y)
x = AND(a, b)
y = AND(c, d)
";
        let nl = bench::parse(src, "t").unwrap();
        let targets = vec![(nl.find("x").unwrap(), true), (nl.find("y").unwrap(), true)];
        let v = find_joint_trigger(&nl, &targets, ValidationBudget::default(), 1)
            .unwrap()
            .expect("1/16 probability: findable");
        // Verify by simulation.
        let sim = BoundSimulator::new(&nl).unwrap();
        let vals = sim.run(&PatternSet::from_vectors(4, &[v]));
        for &(n, want) in &targets {
            assert_eq!(vals.value(n, 0), want);
        }
    }

    #[test]
    fn impossible_joint_trigger_exhausts_budget() {
        // x and nx are complementary: never jointly 1.
        let src = "INPUT(a)\nOUTPUT(y)\nx = BUF(a)\nnx = NOT(a)\ny = AND(x, nx)\n";
        let nl = bench::parse(src, "t").unwrap();
        let targets = vec![
            (nl.find("x").unwrap(), true),
            (nl.find("nx").unwrap(), true),
        ];
        let budget = ValidationBudget {
            vectors: 1_000,
            batch: 128,
        };
        assert!(find_joint_trigger(&nl, &targets, budget, 2)
            .unwrap()
            .is_none());
    }

    #[test]
    fn single_target_trivial() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let v = find_joint_trigger(
            &nl,
            &[(nl.find("y").unwrap(), true)],
            ValidationBudget::default(),
            3,
        )
        .unwrap()
        .unwrap();
        assert!(!v[0]); // y = 1 requires a = 0
    }

    #[test]
    fn occurrence_count_matches_probability() {
        // y = AND(a, b): P(joint) = 1/4 → ~256 hits in 1024 vectors.
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let hits = count_joint_occurrences(&nl, &[(nl.find("y").unwrap(), true)], 1024, 5).unwrap();
        assert!((180..340).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn impossible_joint_has_zero_occurrences() {
        let src = "INPUT(a)\nOUTPUT(y)\nx = BUF(a)\nnx = NOT(a)\ny = AND(x, nx)\n";
        let nl = bench::parse(src, "t").unwrap();
        let hits = count_joint_occurrences(
            &nl,
            &[
                (nl.find("x").unwrap(), true),
                (nl.find("nx").unwrap(), true),
            ],
            1000,
            6,
        )
        .unwrap();
        assert_eq!(hits, 0);
    }

    #[test]
    fn tail_patterns_are_not_false_hits() {
        // Budget smaller than one word: mask handling must not return
        // phantom patterns beyond `count`.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        let nl = bench::parse(src, "t").unwrap();
        let budget = ValidationBudget {
            vectors: 7,
            batch: 7,
        };
        // With 7 vectors the search may or may not find a=b=1; it must
        // never panic or return an out-of-range pattern.
        if let Some(v) =
            find_joint_trigger(&nl, &[(nl.find("y").unwrap(), true)], budget, 4).unwrap()
        {
            assert_eq!(v.len(), 2);
            assert!(v[0] && v[1]);
        }
    }
}
