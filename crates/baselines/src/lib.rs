//! Baseline hardware-trojan insertion frameworks.
//!
//! The paper's Tables II and III compare the proposed compatibility-graph
//! framework against three families of inserters, all re-implemented here
//! against the same substrate (netlist, simulation, trigger synthesis):
//!
//! * [`random`] — **Random HT insertion**: uniformly sampled rare-node
//!   subsets validated by brute-force joint-trigger search. The
//!   rejection-sampling validation is what makes its insertion times
//!   explode (Table III).
//! * [`rl`] — **Reinforcement-learning insertion** (ATTRITION / Sarihi
//!   et al. style): a tabular Q-learning agent learns which rare nodes
//!   co-trigger, paying a simulation-based validation per episode.
//! * [`trusthub`] — **Trust-Hub-style template insertion**: small,
//!   fixed trigger counts (q ≤ 7) over the rarest nodes, mimicking the
//!   manually curated benchmark family.
//!
//! All inserters produce [`BaselineOutcome`]s containing the same
//! [`htforge_core::InfectedDesign`] type the core
//! framework emits, so the detection harness evaluates every family
//! identically.

pub mod random;
pub mod rl;
pub mod trusthub;
pub mod validate;

pub use random::RandomInserter;
pub use rl::{RlConfig, RlInserter};
pub use trusthub::TrustHubInserter;
pub use validate::{find_joint_trigger, ValidationBudget};

use std::time::Duration;

use htforge_core::InfectedDesign;

/// The result of one baseline insertion campaign.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Successfully validated infected designs.
    pub infected: Vec<InfectedDesign>,
    /// Candidate trigger sets that failed validation.
    pub rejected: usize,
    /// Total wall-clock time, validation included.
    pub elapsed: Duration,
}

impl BaselineOutcome {
    /// Designs produced per second (0 when empty).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.infected.len() as f64 / secs
        }
    }
}
