//! Trust-Hub-style template insertion.
//!
//! The Trust-Hub benchmark family consists of *manually* inserted
//! trojans with small trigger counts. This inserter mimics that style:
//! it ranks rare nodes by estimated rare-value probability (the
//! "hard-to-detect signal" criterion the Trust-Hub tooling quantifies),
//! slides a `q`-wide window over the threshold-adjacent band for
//! instance diversity, and — like a human designer — validates each
//! instance with a modest simulation sanity check rather than a
//! guarantee. Instances whose joint trigger cannot be confirmed are
//! still emitted, mirroring the fixed published benchmarks, but flagged
//! through the rejection counter.

use std::time::Instant;

use htforge_atpg::Cube;
use htforge_core::insert::insert_trojan_at;
use htforge_core::payload::choose_payload;
use htforge_core::{InfectedDesign, InsertionError, PayloadStrategy, TriggerPlan};
use htforge_netlist::{netlist::NodeId, Netlist};
use htforge_scoap::Scoap;
use htforge_sim::{PatternSet, RareNodeExtractor, Tri};

use crate::validate::{find_joint_trigger, ValidationBudget};
use crate::BaselineOutcome;

/// Maximum trigger-node count of the Trust-Hub / TRIT families.
pub const TRUSTHUB_MAX_TRIGGER_NODES: usize = 7;

/// Template-based inserter mimicking Trust-Hub benchmarks.
///
/// # Examples
///
/// ```
/// use htforge_baselines::TrustHubInserter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = htforge_circuits::load("c17")?;
/// let outcome = TrustHubInserter::new(2, 2)
///     .with_theta(0.3)
///     .with_profile_vectors(2_000)
///     .run(&nl, 1)?;
/// assert!(outcome.infected.len() <= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustHubInserter {
    trigger_nodes: usize,
    num_instances: usize,
    theta: f64,
    profile_vectors: usize,
    max_fanin: usize,
    budget: ValidationBudget,
}

impl TrustHubInserter {
    /// A template inserter with `trigger_nodes ≤ 7` trigger nodes.
    ///
    /// # Panics
    ///
    /// Panics if `trigger_nodes` is 0 or exceeds
    /// [`TRUSTHUB_MAX_TRIGGER_NODES`].
    #[must_use]
    pub fn new(trigger_nodes: usize, num_instances: usize) -> Self {
        assert!(
            (1..=TRUSTHUB_MAX_TRIGGER_NODES).contains(&trigger_nodes),
            "trust-hub style trojans use 1..=7 trigger nodes"
        );
        TrustHubInserter {
            trigger_nodes,
            num_instances,
            theta: 0.20,
            profile_vectors: 10_000,
            max_fanin: 4,
            budget: ValidationBudget {
                vectors: 20_000,
                batch: 4_096,
            },
        }
    }

    /// Sets the rareness threshold (default 0.20).
    #[must_use]
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the profiling vector count (default 10 000).
    #[must_use]
    pub fn with_profile_vectors(mut self, vectors: usize) -> Self {
        self.profile_vectors = vectors;
        self
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Returns [`InsertionError::NotEnoughRareNodes`] when the rare pool
    /// is smaller than the trigger count; propagates netlist errors.
    pub fn run(&self, nl: &Netlist, seed: u64) -> Result<BaselineOutcome, InsertionError> {
        let start = Instant::now();
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let scoap = Scoap::compute(nl)?;
        let patterns = PatternSet::random(comb.inputs().len(), self.profile_vectors, seed);
        let rare = RareNodeExtractor::new(self.theta).extract(&comb, &patterns)?;
        if rare.len() < self.trigger_nodes {
            return Err(InsertionError::NotEnoughRareNodes {
                found: rare.len(),
                needed: self.trigger_nodes,
            });
        }

        // Rank by rare-event probability, *least-rare first*: manually
        // curated trojans pick signals flagged as hard-to-detect by
        // threshold tools, which clusters them near the rareness
        // threshold rather than in the deep tail — the reason Table II
        // shows the Trust-Hub family as partially detectable.
        let mut pool: Vec<(NodeId, bool, u64)> = rare
            .iter()
            .map(|r| (r.node, r.rare_value, r.count))
            .collect();
        pool.sort_by_key(|&(_, _, count)| std::cmp::Reverse(count));

        let mut infected = Vec::new();
        let mut rejected = 0usize;
        for instance in 0..self.num_instances {
            // Sliding window over the ranked pool for instance diversity.
            let base = instance % (pool.len() - self.trigger_nodes + 1);
            let window: Vec<(NodeId, bool)> = pool[base..base + self.trigger_nodes]
                .iter()
                .map(|&(n, v, _)| (n, v))
                .collect();

            let found = find_joint_trigger(
                &comb,
                &window,
                self.budget,
                seed.wrapping_add(instance as u64),
            )?;
            if found.is_none() {
                rejected += 1;
            }

            let rare_values: Vec<bool> = window.iter().map(|&(_, v)| v).collect();
            let plan = TriggerPlan::synthesize(&rare_values, self.max_fanin);
            let trigger_nodes: Vec<NodeId> = window.iter().map(|&(n, _)| n).collect();
            let Some(payload) = choose_payload(
                nl,
                &scoap,
                &trigger_nodes,
                PayloadStrategy::Random(seed.wrapping_add(instance as u64)),
            ) else {
                continue;
            };
            let cube = match &found {
                Some(vector) => {
                    Cube::from_tris(vector.iter().map(|&b| Tri::from_bool(b)).collect())
                }
                None => Cube::all_x(comb.inputs().len()),
            };
            let (netlist, trojan) =
                insert_trojan_at(nl, &window, &plan, payload, &format!("th{instance}"), cube)?;
            infected.push(InfectedDesign { netlist, trojan });
        }

        Ok(BaselineOutcome {
            infected,
            rejected,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_small_trigger_trojans() {
        let nl = htforge_circuits::load("c17").unwrap();
        let outcome = TrustHubInserter::new(2, 3)
            .with_theta(0.3)
            .with_profile_vectors(2_000)
            .run(&nl, 9)
            .unwrap();
        assert!(!outcome.infected.is_empty());
        for d in &outcome.infected {
            assert!(d.netlist.validate().is_ok());
            assert_eq!(d.trojan.trigger_node_count(), 2);
        }
    }

    #[test]
    fn window_nodes_come_from_the_rare_pool() {
        let nl = htforge_circuits::load("c17").unwrap();
        let outcome = TrustHubInserter::new(2, 1)
            .with_theta(0.3)
            .with_profile_vectors(2_000)
            .run(&nl, 9)
            .unwrap();
        // The trigger window is drawn from the rare pool (near-threshold
        // band), so both nodes are below-threshold by construction.
        let d = &outcome.infected[0];
        assert_eq!(d.trojan.trigger_inputs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "1..=7")]
    fn rejects_large_trigger_counts() {
        let _ = TrustHubInserter::new(20, 1);
    }
}
