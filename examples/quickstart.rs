//! Quickstart: insert one stealthy hardware trojan into an ISCAS circuit
//! and write the infected netlist next to the golden one.
//!
//! ```sh
//! cargo run --release --example quickstart [circuit] [q] [n]
//! # e.g.
//! cargo run --release --example quickstart c2670 12 3
//! HTFORGE_OBS=jsonl cargo run --release --example quickstart  # event stream
//! ```
//!
//! Always writes a `results/report_<circuit>.json` run report (schema
//! `htforge.run_report/v1`, see `DESIGN.md` §8) with the per-phase spans
//! and PODEM search counters of the run.

use std::error::Error;
use std::fs;

use htforge::atpg::PodemConfig;
use htforge::core::{InsertionConfig, InsertionFramework};
use htforge::netlist::{bench, verilog, AreaModel, AreaReport};
use htforge::obs::{Json, RunReport};

fn main() -> Result<(), Box<dyn Error>> {
    let _obs = htforge::obs::init_from_env();
    htforge::obs::global().enable();
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "c2670".to_owned());
    let q: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(8);
    let n: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2);

    println!("loading {circuit} …");
    let golden = htforge::circuits::load(&circuit)?;
    println!("  {golden}");

    let config = InsertionConfig {
        theta: 0.20,
        num_vectors: 10_000,
        trigger_nodes: q,
        num_instances: n,
        seed: 2025,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    };
    println!(
        "running compatibility-graph insertion (θ = {}, |V| = {}, q = {q}, N = {n}) …",
        config.theta, config.num_vectors
    );
    let outcome = InsertionFramework::new(config).run(&golden)?;

    println!(
        "rare nodes: {} (of {} total nodes)",
        outcome.rare_nodes.len(),
        golden.node_count()
    );
    println!(
        "compatibility graph: {} vertices, {} edges ({} rare events dropped)",
        outcome.graph_stats.vertices, outcome.graph_stats.edges, outcome.graph_stats.dropped
    );
    println!(
        "phase timings: rare {:?}, compat {:?}, cliques {:?}, insertion {:?}, validation {:?} (total {:?})",
        outcome.timings.rare_extraction,
        outcome.timings.compat_graph,
        outcome.timings.clique_enumeration,
        outcome.timings.insertion,
        outcome.timings.validation,
        outcome.timings.total(),
    );

    let out_dir = std::path::Path::new("target/htforge-out");
    fs::create_dir_all(out_dir)?;
    let model = AreaModel::nangate45();
    for (i, design) in outcome.infected.iter().enumerate() {
        let report = AreaReport::compare(&model, &golden, &design.netlist);
        println!(
            "instance {i}: q = {}, trigger gates = {}, payload = {}, area overhead = {:.2}%",
            design.trojan.trigger_node_count(),
            design.trojan.trigger_gates.len(),
            design.netlist.node(design.trojan.payload_net).name(),
            report.overhead_percent(),
        );
        let bench_path = out_dir.join(format!("{circuit}_ht{i}.bench"));
        fs::write(&bench_path, bench::write(&design.netlist))?;
        let verilog_path = out_dir.join(format!("{circuit}_ht{i}.v"));
        fs::write(&verilog_path, verilog::write(&design.netlist))?;
        println!(
            "  wrote {} and {}",
            bench_path.display(),
            verilog_path.display()
        );
    }

    let report = RunReport::from_recorder(&format!("quickstart_{circuit}"), htforge::obs::global())
        .with_meta("circuit", Json::Str(circuit.clone()))
        .with_meta("trigger_nodes", Json::Num(q as f64))
        .with_meta("instances", Json::Num(n as f64));
    let report_path = std::path::PathBuf::from(format!("results/report_{circuit}.json"));
    report.write_to(&report_path)?;
    println!("wrote run report {}", report_path.display());
    Ok(())
}
