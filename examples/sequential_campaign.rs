//! Sequential ("time-bomb") trojan campaign on the batched simulation
//! path: insert counter-armed trojans of several widths, then grade
//! them with a multi-cycle random functional campaign — 64 traces per
//! machine word — reporting per-design trigger/detection latencies.
//!
//! ```sh
//! cargo run --release --example sequential_campaign [circuit] [traces] [cycles]
//! ```
//!
//! Writes a `results/report_<circuit>_seq.json` run report (campaign
//! span, `seq.trace_cycles` and `detect.*` counters; `DESIGN.md` §8).

use std::error::Error;
use std::time::Instant;

use htforge::atpg::PodemConfig;
use htforge::core::{
    enumerate_cliques, insert_sequential_trojan, CompatGraph, PayloadKind, PayloadStrategy,
    SequentialInfectedDesign, TriggerPlan,
};
use htforge::detect::{evaluate_sequential_designs, SequentialCampaign};
use htforge::obs::{Json, RunReport};
use htforge::sim::{PatternSet, RareNodeExtractor};

fn main() -> Result<(), Box<dyn Error>> {
    let _obs = htforge::obs::init_from_env();
    htforge::obs::global().enable();
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "c2670".to_owned());
    let traces: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(64);
    let cycles: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(1000);

    let nl = htforge::circuits::load(&circuit)?;
    let golden = if nl.dffs().is_empty() {
        nl.clone()
    } else {
        nl.scan_cut()
    };
    println!("host: {golden}");

    // --- rare-event profile and compatibility graph --------------------
    let profile = PatternSet::random(golden.inputs().len(), 10_000, 1);
    let rare = RareNodeExtractor::new(0.30).extract(&golden, &profile)?;
    let graph = CompatGraph::build(&golden, &rare, PodemConfig::justify())?;
    let cliques = enumerate_cliques(&graph, 2, 3, 0);
    let scoap = htforge::scoap::Scoap::compute(&golden)?;

    // --- one time-bomb per counter width over distinct cliques ---------
    let mut designs = Vec::new();
    for (k, bits) in [1usize, 2, 4].iter().enumerate() {
        let clique = &cliques[k.min(cliques.len() - 1)];
        let leaves: Vec<_> = clique
            .members
            .iter()
            .map(|&m| {
                let e = &graph.events()[m];
                (e.node, e.rare_value)
            })
            .collect();
        let rare_values: Vec<bool> = leaves.iter().map(|&(_, v)| v).collect();
        let plan = TriggerPlan::synthesize(&rare_values, 4);
        let trigger_nodes: Vec<_> = leaves.iter().map(|&(n, _)| n).collect();
        let payload = htforge::core::payload::choose_payload(
            &golden,
            &scoap,
            &trigger_nodes,
            PayloadStrategy::MostObservable,
        )
        .ok_or("no safe payload net")?;
        let (infected, trojan) = insert_sequential_trojan(
            &golden,
            &leaves,
            &plan,
            payload,
            PayloadKind::Flip,
            *bits,
            &format!("s{k}"),
            clique.activation_cube.clone(),
        )?;
        println!(
            "inserted {}-bit time-bomb (arms on event {}), payload on '{}'",
            bits,
            trojan.events_to_arm + 1,
            golden.node(trojan.combinational.payload_net).name()
        );
        designs.push(SequentialInfectedDesign {
            netlist: infected,
            trojan,
        });
    }

    // --- batched functional campaign -----------------------------------
    let campaign = SequentialCampaign::new(traces, cycles, 7);
    let started = Instant::now();
    let report = evaluate_sequential_designs(&golden, &designs, &campaign)?;
    let elapsed = started.elapsed();
    let total_trace_cycles = campaign.trace_cycles() * (designs.len() as u64 + 1);

    println!(
        "\ncampaign: {traces} traces x {cycles} cycles ({} trace-cycles incl. golden) in {elapsed:?} => {:.2e} trace-cycles/s",
        total_trace_cycles,
        total_trace_cycles as f64 / elapsed.as_secs_f64()
    );
    println!("\n design | triggered      | detected       | first arm | first detect | mean arm");
    println!(" -------|----------------|----------------|-----------|--------------|---------");
    for (k, v) in report.verdicts.iter().enumerate() {
        let fmt_cycle = |c: Option<u32>| c.map_or("never".to_owned(), |c| format!("cyc {c}"));
        println!(
            " ht s{k}  | {:3}/{} traces | {:3}/{} traces | {:>9} | {:>12} | {}",
            v.triggered_traces,
            traces,
            v.detected_traces,
            traces,
            fmt_cycle(v.trigger_latency),
            fmt_cycle(v.detection_latency),
            v.mean_trigger_latency
                .map_or("-".to_owned(), |m| format!("cyc {m:.1}")),
        );
    }
    println!(
        "\ntrigger coverage {:.0}%  detection coverage {:.0}%",
        report.trigger_coverage(),
        report.detection_coverage()
    );

    let run_report = RunReport::from_recorder(
        &format!("sequential_campaign_{circuit}"),
        htforge::obs::global(),
    )
    .with_meta("circuit", Json::Str(circuit.clone()))
    .with_meta("traces", Json::Num(traces as f64))
    .with_meta("cycles", Json::Num(cycles as f64));
    let report_path = std::path::PathBuf::from(format!("results/report_{circuit}_seq.json"));
    run_report.write_to(&report_path)?;
    println!("wrote run report {}", report_path.display());
    Ok(())
}
