//! Detection showdown: grade trojans from all four insertion families
//! against all three detection schemes — a miniature of the paper's
//! Table II.
//!
//! ```sh
//! cargo run --release --example detection_showdown [circuit]
//! ```

use std::error::Error;

use htforge::atpg::PodemConfig;
use htforge::baselines::{RandomInserter, RlConfig, RlInserter, TrustHubInserter};
use htforge::core::{InfectedDesign, InsertionConfig, InsertionFramework};
use htforge::detect::{
    evaluate_designs, DetectionScheme, MeroDetection, NdAtpgDetection, RandomDetection,
};
use htforge::sim::{PatternSet, RareNodeExtractor};

fn main() -> Result<(), Box<dyn Error>> {
    let circuit = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "c2670".to_owned());
    let golden = htforge::circuits::load(&circuit)?;
    println!("host: {golden}");
    let comb = if golden.dffs().is_empty() {
        golden.clone()
    } else {
        golden.scan_cut()
    };

    // --- generate trojans with each family -----------------------------
    let instances = 10;
    let mut families: Vec<(&str, Vec<InfectedDesign>)> = Vec::new();

    let proposed = InsertionFramework::new(InsertionConfig {
        theta: 0.20,
        num_vectors: 10_000,
        trigger_nodes: 16,
        num_instances: instances,
        seed: 1,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    })
    .run(&golden)?;
    println!(
        "proposed framework: {} instances in {:?}",
        proposed.infected.len(),
        proposed.timings.total()
    );
    families.push(("Proposed", proposed.infected));

    let random = RandomInserter::new(4, instances).run(&golden, 2)?;
    println!(
        "random insertion:   {} instances in {:?} ({} rejected)",
        random.infected.len(),
        random.elapsed,
        random.rejected
    );
    families.push(("Random-HT", random.infected));

    let rl = RlInserter::new(RlConfig {
        trigger_nodes: 4,
        num_instances: instances,
        episodes: 60,
        ..RlConfig::default()
    })
    .run(&golden, 3)?;
    println!(
        "RL insertion:       {} instances in {:?} ({} failed episodes)",
        rl.infected.len(),
        rl.elapsed,
        rl.rejected
    );
    families.push(("RL-HT", rl.infected));

    let th = TrustHubInserter::new(4, instances).run(&golden, 4)?;
    println!(
        "trust-hub style:    {} instances in {:?}",
        th.infected.len(),
        th.elapsed
    );
    families.push(("TrustHub", th.infected));

    // --- detection schemes ---------------------------------------------
    let profile = PatternSet::random(comb.inputs().len(), 10_000, 99);
    let rare = RareNodeExtractor::new(0.20).extract(&comb, &profile)?;
    let schemes: Vec<Box<dyn DetectionScheme>> = vec![
        Box::new(RandomDetection::new(10_000, 5)),
        Box::new(MeroDetection::new(1_000, 2_500, 6)),
        Box::new(NdAtpgDetection::new(5, 7)),
    ];

    println!(
        "\n{:>10} {:>9} {:>8} {:>8}",
        "family", "scheme", "TC %", "DC %"
    );
    for (name, designs) in &families {
        if designs.is_empty() {
            println!("{name:>10}  (no instances generated)");
            continue;
        }
        for scheme in &schemes {
            let tests = scheme.generate_tests(&comb, &rare)?;
            let report = evaluate_designs(&golden, designs, &tests)?;
            println!(
                "{:>10} {:>9} {:>7.1} {:>7.1}",
                name,
                scheme.name(),
                report.trigger_coverage(),
                report.detection_coverage(),
            );
        }
    }
    println!("\nExpected shape (paper Table II): the proposed family evades all");
    println!("three schemes while small-q baselines are partially covered.");
    Ok(())
}
