//! Multi-trojan, multi-effect insertion: place several trojans with
//! different payload effects into a *single* netlist (the paper's
//! "single or multiple HT instances" configuration) and demonstrate each
//! one firing independently.
//!
//! ```sh
//! cargo run --release --example multi_trojan [circuit]
//! ```

use std::error::Error;

use htforge::atpg::PodemConfig;
use htforge::core::{InsertionConfig, InsertionFramework, PayloadKind};
use htforge::netlist::bench;
use htforge::sim::simulator::BoundSimulator;
use htforge::sim::PatternSet;

fn main() -> Result<(), Box<dyn Error>> {
    let circuit = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "c3540".to_owned());
    let golden = htforge::circuits::load(&circuit)?;
    println!("host: {golden}");

    for kind in [
        PayloadKind::Flip,
        PayloadKind::ForceZero,
        PayloadKind::ForceOne,
    ] {
        let framework = InsertionFramework::new(InsertionConfig {
            theta: 0.20,
            num_vectors: 10_000,
            trigger_nodes: 12,
            num_instances: 3,
            seed: 11,
            podem: PodemConfig::justify(),
            payload_kind: kind,
            ..InsertionConfig::default()
        });
        let (combined, instances) = framework.run_combined(&golden)?;
        println!(
            "\npayload {kind:?}: {} trojans in one netlist (+{} gates)",
            instances.len(),
            combined.node_count() - golden.node_count()
        );

        let sim = BoundSimulator::new(&combined)?;
        for (i, trojan) in instances.iter().enumerate() {
            // Fire each trojan with its own activation cube and check
            // that exactly the right trigger asserts.
            let v = trojan.activation_cube.fill_with(false);
            let ps = PatternSet::from_vectors(golden.inputs().len(), &[v]);
            let vals = sim.run(&ps);
            let fired: Vec<usize> = instances
                .iter()
                .enumerate()
                .filter(|(_, t)| vals.value(t.trigger_output, 0))
                .map(|(k, _)| k)
                .collect();
            println!(
                "  cube {i} fires trigger(s) {fired:?}; payload net {} via {:?}",
                combined.node(trojan.payload_net).name(),
                trojan.payload_kind,
            );
            assert!(fired.contains(&i), "trojan {i} must fire under its cube");
        }

        // Quiescence: none of the triggers fire under random stimuli.
        let ps = PatternSet::random(golden.inputs().len(), 4_096, 3);
        let vals = sim.run(&ps);
        let accidental: usize = instances
            .iter()
            .map(|t| {
                (0..ps.len())
                    .filter(|&p| vals.value(t.trigger_output, p))
                    .count()
            })
            .sum();
        println!("  accidental activations over 4096 random vectors: {accidental}");

        if kind == PayloadKind::Flip {
            let text = bench::write(&combined);
            let lines = text.lines().count();
            println!("  serialized multi-trojan netlist: {lines} .bench lines");
        }
    }
    Ok(())
}
