//! Benchmark-generation campaign: reproduce the paper's headline use
//! case — a large family of unique HT-infected netlists per circuit,
//! each with a different trigger-node clique.
//!
//! ```sh
//! cargo run --release --example benchmark_campaign [circuit] [instances]
//! ```
//!
//! Writes every infected netlist to `target/htforge-campaign/` and prints
//! a summary table (instance, q, trigger probability estimate, payload,
//! area overhead).

use std::error::Error;
use std::fs;

use htforge::atpg::PodemConfig;
use htforge::core::{InsertionConfig, InsertionFramework, PayloadStrategy};
use htforge::netlist::{bench, AreaModel, AreaReport};

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "c3540".to_owned());
    let instances: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(25);

    let golden = htforge::circuits::load(&circuit)?;
    println!("campaign host: {golden}");

    // Probe the feasible clique size by halving from an ambitious start,
    // then generate `instances` trojans at that q.
    let mut q = 48usize;
    let outcome = loop {
        let config = InsertionConfig {
            theta: 0.20,
            num_vectors: 10_000,
            trigger_nodes: q,
            num_instances: instances,
            seed: 7,
            podem: PodemConfig::justify(),
            payload: PayloadStrategy::Random(7),
            ..InsertionConfig::default()
        };
        match InsertionFramework::new(config).run(&golden) {
            Ok(outcome) => break outcome,
            Err(err) if q > 2 => {
                println!("q = {q}: {err}; halving");
                q /= 2;
            }
            Err(err) => return Err(err.into()),
        }
    };

    let out_dir = std::path::Path::new("target/htforge-campaign");
    fs::create_dir_all(out_dir)?;
    let model = AreaModel::nangate45();
    println!(
        "\n{:>4} {:>5} {:>14} {:>18} {:>10}",
        "inst", "q", "p(activate)", "payload net", "area ovh"
    );
    for (i, design) in outcome.infected.iter().enumerate() {
        // Estimated activation probability: product of leaf rare-event
        // probabilities (independence approximation).
        let p: f64 = design
            .trojan
            .trigger_inputs
            .iter()
            .map(|&(node, _)| {
                outcome.rare_nodes.get(node).map_or(0.2, |r| {
                    r.probability(outcome.rare_nodes.samples()).max(1e-6)
                })
            })
            .product();
        let report = AreaReport::compare(&model, &golden, &design.netlist);
        println!(
            "{:>4} {:>5} {:>14.3e} {:>18} {:>9.2}%",
            i,
            design.trojan.trigger_node_count(),
            p,
            design.netlist.node(design.trojan.payload_net).name(),
            report.overhead_percent(),
        );
        fs::write(
            out_dir.join(format!("{circuit}_ht{i:03}.bench")),
            bench::write(&design.netlist),
        )?;
    }
    println!(
        "\n{} unique HT benchmarks written to {} in {:?}",
        outcome.infected.len(),
        out_dir.display(),
        outcome.timings.total(),
    );
    Ok(())
}
